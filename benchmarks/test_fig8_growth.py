"""Figure 8 — performance as the LBSN grows (20% .. 100% snapshots).

The paper takes snapshots at 20%..100% of each data set's time span,
rebuilds the indexes and reports per-query CPU time and node accesses.
The TAR-tree runs several times faster than IND-spa/IND-agg and greatly
faster than the baseline at every snapshot, and its node accesses stay
lowest and stable as the network grows.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    geometric_mean_ratio,
    get_dataset,
    get_tree,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search
from repro.datasets.workload import generate_queries

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
N_QUERIES = 120


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig8_growth(benchmark, name):
    cpu = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    cpu["baseline"] = []
    nodes = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    for fraction in FRACTIONS:
        snapshot = get_dataset(name, fraction)
        queries = generate_queries(snapshot, n_queries=N_QUERIES, seed=8)
        for strategy in STRATEGIES:
            tree = get_tree(name, strategy=strategy, fraction=fraction)
            result = measure_index(tree, queries)
            cpu[STRATEGY_LABELS[strategy]].append(result.cpu_ms)
            nodes[STRATEGY_LABELS[strategy]].append(result.node_accesses)
        baseline_tree = get_tree(name, fraction=fraction)
        cpu["baseline"].append(measure_baseline(baseline_tree, queries).cpu_ms)

    labels = ["%d%%" % int(f * 100) for f in FRACTIONS]
    print_series(
        "Figure 8(%s): CPU time (ms) per query vs LBSN growth" % name,
        "time",
        labels,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 8(%s): node accesses per query vs LBSN growth" % name,
        "time",
        labels,
        nodes,
        fmt="%10.1f",
    )

    # The TAR-tree is fastest on average across the growth sweep and far
    # faster than the baseline at the full snapshot.
    for rival in ("IND-spa", "IND-agg", "baseline"):
        assert geometric_mean_ratio(cpu["TAR-tree"], cpu[rival]) > 1.0, rival
    assert cpu["baseline"][-1] / cpu["TAR-tree"][-1] > 3.0

    # Node accesses: never worse than IND-agg, competitive with IND-spa.
    assert geometric_mean_ratio(nodes["TAR-tree"], nodes["IND-agg"]) > 1.0
    assert geometric_mean_ratio(nodes["TAR-tree"], nodes["IND-spa"]) > 0.85

    full_tree = get_tree(name)
    queries = generate_queries(get_dataset(name), n_queries=1, seed=8)
    benchmark(knnta_search, full_tree, queries[0])
