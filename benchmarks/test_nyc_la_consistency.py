"""NYC and LA consistency check (Section 8, "the results of NYC and LA
are consistent with those of GW and GS, and hence are omitted").

The paper presents only GW and GS; this bench verifies the omission was
justified in the reproduction too: on the NYC and LA stand-ins the same
method ordering holds at the default parameters.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    get_tree,
    get_workload,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search


@pytest.mark.parametrize("name", ["NYC", "LA"])
def test_nyc_la_default_parameters(benchmark, name):
    trees = {s: get_tree(name, strategy=s) for s in STRATEGIES}
    workload = get_workload(name)

    cpu = {}
    nodes = {}
    for strategy in STRATEGIES:
        result = measure_index(trees[strategy], workload)
        cpu[STRATEGY_LABELS[strategy]] = result.cpu_ms
        nodes[STRATEGY_LABELS[strategy]] = result.node_accesses
    cpu["baseline"] = measure_baseline(trees["integral3d"], workload).cpu_ms

    print_series(
        "Consistency (%s): defaults k=10, alpha0=0.3" % name,
        "metric",
        ["CPU ms/query", "node accesses/query"],
        {
            label: [cpu[label], nodes.get(label)]
            for label in ("TAR-tree", "IND-spa", "IND-agg", "baseline")
        },
        fmt="%10.3f",
    )

    # The same ordering as on GW/GS: the TAR-tree is the fastest index
    # and clearly beats the scan; IND-agg may approach the baseline on
    # these small stand-ins (as it does at large k in the paper).
    assert cpu["TAR-tree"] <= min(cpu["IND-spa"], cpu["IND-agg"]) * 1.1
    assert cpu["TAR-tree"] < cpu["baseline"]
    assert cpu["IND-spa"] < cpu["baseline"] * 1.1
    assert cpu["IND-agg"] < cpu["baseline"] * 1.2
    assert nodes["TAR-tree"] <= nodes["IND-agg"] * 1.15

    benchmark(knnta_search, trees["integral3d"], workload[0])
