"""Shared machinery for the per-figure benchmark files.

The paper's experiments (Section 8) use four data sets and report, for
1,000 queries, the average CPU time and number of node accesses.  The
reproduction uses the synthetic stand-ins at the scales below (recorded
in EXPERIMENTS.md) and 200 queries per sweep point; presented results
follow the paper in showing GW and GS.

Everything heavy (data sets, trees, workloads) is cached per-process so
the figure files can share structures.
"""

import functools
import time
from typing import NamedTuple

from repro import TARTree, datasets
from repro.core.collective import CollectiveProcessor, process_individually
from repro.core.knnta import knnta_search
from repro.core.scan import sequential_scan
from repro.datasets.workload import generate_queries

# Scales applied to the published data set sizes (DESIGN.md §3): full-size
# GW (1.28M POIs) is impractical for a pure-Python R-tree, and the paper's
# findings are about *relative* behaviour.  GS runs at full scale; GW at
# 0.3 (~3,000 effective POIs, the build-time sweet spot for the sweeps
# that reconstruct trees per configuration).
BENCH_SCALES = {"NYC": 0.3, "LA": 0.3, "GW": 0.3, "GS": 1.0}
BENCH_SEED = 42
N_QUERIES = 200
DEFAULT_EPOCH_LENGTH = 7.0
DEFAULT_NODE_SIZE = 1024

STRATEGIES = ("integral3d", "spatial", "aggregate")
STRATEGY_LABELS = {
    "integral3d": "TAR-tree",
    "spatial": "IND-spa",
    "aggregate": "IND-agg",
}


@functools.lru_cache(maxsize=None)
def get_dataset(name, fraction=1.0):
    """The (cached) synthetic stand-in for ``name``, optionally a snapshot."""
    data = datasets.make(name, scale=BENCH_SCALES[name], seed=BENCH_SEED)
    if fraction < 1.0:
        data = data.snapshot(fraction)
    return data


@functools.lru_cache(maxsize=None)
def get_tree(
    name,
    strategy="integral3d",
    epoch_length=DEFAULT_EPOCH_LENGTH,
    node_size=DEFAULT_NODE_SIZE,
    fraction=1.0,
    tia_buffer_slots=10,
):
    """A (cached) TAR-tree over the named data set.

    The packed frame cache is disabled: the per-figure benchmarks
    reproduce the *paper's* cost model — node accesses and TIA page
    reads along the object path — which the packed hot path would
    short-circuit (it reads zero TIA pages).  ``benchmarks/test_packed.py``
    measures the packed path itself, on trees it builds directly.
    """
    data = get_dataset(name, fraction)
    tree = TARTree.build(
        data,
        epoch_length=epoch_length,
        strategy=strategy,
        node_size=node_size,
        tia_buffer_slots=tia_buffer_slots,
    )
    tree.frames.disable()
    return tree


@functools.lru_cache(maxsize=None)
def get_workload(name, n_queries=N_QUERIES, k=10, alpha0=0.3, seed=7):
    data = get_dataset(name)
    return generate_queries(data, n_queries=n_queries, k=k, alpha0=alpha0, seed=seed)


class Measurement(NamedTuple):
    """Per-query averages over a workload."""

    cpu_ms: float
    node_accesses: float
    leaf_node_accesses: float
    tia_pages: float


def measure_index(tree, queries):
    """Run ``queries`` through the BFS; return per-query averages."""
    snap = tree.stats.snapshot()
    start = time.perf_counter()
    for query in queries:
        knnta_search(tree, query)
    elapsed = time.perf_counter() - start
    delta = tree.stats.diff(snap)
    n = len(queries)
    return Measurement(
        cpu_ms=1000.0 * elapsed / n,
        node_accesses=delta.rtree_nodes / n,
        leaf_node_accesses=delta.rtree_leaf / n,
        tia_pages=delta.tia_pages / n,
    )


def measure_baseline(tree, queries):
    """Run ``queries`` through the sequential scan baseline."""
    start = time.perf_counter()
    for query in queries:
        sequential_scan(tree, query)
    elapsed = time.perf_counter() - start
    return Measurement(
        cpu_ms=1000.0 * elapsed / len(queries),
        node_accesses=0.0,
        leaf_node_accesses=0.0,
        tia_pages=0.0,
    )


def measure_collective(tree, queries):
    """Run ``queries`` as one collective batch; per-query averages."""
    snap = tree.stats.snapshot()
    start = time.perf_counter()
    CollectiveProcessor(tree).run(list(queries))
    elapsed = time.perf_counter() - start
    delta = tree.stats.diff(snap)
    n = len(queries)
    return Measurement(
        cpu_ms=1000.0 * elapsed / n,
        node_accesses=delta.rtree_nodes / n,
        leaf_node_accesses=delta.rtree_leaf / n,
        tia_pages=delta.tia_pages / n,
    )


def measure_individual(tree, queries):
    """Run ``queries`` one by one (the Section 8.4 baseline)."""
    snap = tree.stats.snapshot()
    start = time.perf_counter()
    process_individually(tree, list(queries))
    elapsed = time.perf_counter() - start
    delta = tree.stats.diff(snap)
    n = len(queries)
    return Measurement(
        cpu_ms=1000.0 * elapsed / n,
        node_accesses=delta.rtree_nodes / n,
        leaf_node_accesses=delta.rtree_leaf / n,
        tia_pages=delta.tia_pages / n,
    )


def print_series(title, x_label, x_values, series, fmt="%10.2f"):
    """Print one figure's data in the paper's rows/series layout.

    ``series`` maps a curve label (e.g. ``"TAR-tree"``) to a list of
    values aligned with ``x_values``.
    """
    print()
    print("=" * 72)
    print(title)
    print("-" * 72)
    header = "%-12s" % x_label + "".join("%12s" % str(x) for x in x_values)
    print(header)
    for label, values in series.items():
        row = "%-12s" % label + "".join(
            "%12s" % (fmt % v if v is not None else "-") for v in values
        )
        print(row)
    print("=" * 72)


def geometric_mean_ratio(winner, loser):
    """Average advantage of ``winner`` over ``loser`` across a sweep."""
    ratios = [
        l / w for w, l in zip(winner, loser) if w > 0 and l > 0
    ]
    if not ratios:
        return 1.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))
