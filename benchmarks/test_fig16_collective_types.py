"""Figure 16 — collective vs individual, varying the number of query types.

Queries are grouped by their time interval ("query type"); with more
distinct intervals in the batch the aggregate-computation sharing
declines, so collective processing loses some of its edge — but the
paper finds it degrades gracefully beyond ~10 types and stays several
times faster than individual processing throughout {1, 5, 10, 50, 100}
types.
"""

import random

import pytest

from _harness import (
    get_dataset,
    get_tree,
    measure_collective,
    measure_individual,
    print_series,
)
from repro.core.collective import CollectiveProcessor
from repro.core.query import KNNTAQuery
from repro.temporal.epochs import TimeInterval

TYPE_COUNTS = (1, 5, 10, 50, 100)
BATCH_SIZE = 1000


def _typed_queries(data, n_types, seed):
    """A batch whose intervals are drawn from exactly ``n_types`` presets."""
    rng = random.Random(seed)
    presets = []
    for i in range(n_types):
        length = float(2 ** (i % 10))
        length = min(length, data.span_days)
        start = data.t0 + rng.random() * (data.span_days - length)
        presets.append(TimeInterval(start, start + length))
    locations = list(data.positions.values())
    return [
        KNNTAQuery(rng.choice(locations), rng.choice(presets), k=10, alpha0=0.3)
        for _ in range(BATCH_SIZE)
    ]


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig16_collective_vary_types(benchmark, name):
    data = get_dataset(name)
    collective_tree = get_tree(name)
    unbuffered_tree = get_tree(name, tia_buffer_slots=0)

    cpu = {"individual": [], "collective": []}
    nodes = {"individual": [], "collective": []}
    for n_types in TYPE_COUNTS:
        queries = _typed_queries(data, n_types, seed=16)
        collective = measure_collective(collective_tree, queries)
        individual = measure_individual(unbuffered_tree, queries)
        cpu["collective"].append(collective.cpu_ms)
        cpu["individual"].append(individual.cpu_ms)
        nodes["collective"].append(collective.node_accesses)
        nodes["individual"].append(individual.node_accesses)

    print_series(
        "Figure 16(%s): CPU time (ms) per query vs #query types" % name,
        "#types",
        TYPE_COUNTS,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 16(%s): node accesses per query vs #query types" % name,
        "#types",
        TYPE_COUNTS,
        nodes,
        fmt="%10.2f",
    )

    # Collective processing outperforms individual at every type count
    # in node accesses (deterministic) and overall in CPU (wall-clock is
    # compared across the sweep to stay robust against scheduler noise).
    for coll, ind in zip(nodes["collective"], nodes["individual"]):
        assert coll < ind
    assert sum(cpu["collective"]) < sum(cpu["individual"])

    # Sharing declines with more types, but degrades gracefully: going
    # from 10 to 100 types costs less than 4x in node accesses.
    ten = TYPE_COUNTS.index(10)
    assert nodes["collective"][-1] < nodes["collective"][ten] * 4

    queries = _typed_queries(data, 5, seed=16)[:50]
    benchmark(CollectiveProcessor(collective_tree).run, queries)
