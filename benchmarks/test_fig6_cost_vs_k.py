"""Figure 6 — cost-analysis validation varying k.

The paper compares the estimated vs measured (a, b) ranking score of the
k-th POI ``f(p_k)`` and (c, d) number of leaf node accesses, for
k in {1, 5, 10, 50, 100} on GW and GS with alpha0 = 0.3.  The estimates
should be close for k >= 5 and exhibit the same growing trend.

Validation queries use the full history interval and the exact aggregate
normaliser, matching the cost model's unit-cube geometry (DESIGN.md §4).
"""

import pytest

from _harness import get_dataset, get_tree, print_series
from repro.core.costmodel import CostModel
from repro.core.knnta import knnta_search
from repro.datasets.workload import generate_queries
from repro.temporal.epochs import TimeInterval

K_VALUES = (1, 5, 10, 50, 100)
ALPHA0 = 0.3
N_QUERIES = 60


def _setup(name):
    data = get_dataset(name)
    tree = get_tree(name)
    interval = TimeInterval(data.t0, data.tc)
    normalizer = tree.normalizer(interval, exact=True)
    aggregates = [
        tree.poi_tia(pid).aggregate(tree.clock, interval) for pid in tree.poi_ids()
    ]
    model = CostModel.from_aggregates(aggregates, capacity=tree.capacity)
    queries = [
        q._replace(interval=interval)
        for q in generate_queries(data, n_queries=N_QUERIES, alpha0=ALPHA0, seed=5)
    ]
    return tree, model, normalizer, queries


def _measure(tree, queries, normalizer, k):
    fpk_total = 0.0
    leaves_total = 0
    for query in queries:
        snap = tree.stats.snapshot()
        results = knnta_search(tree, query._replace(k=k), normalizer=normalizer)
        leaves_total += tree.stats.diff(snap).rtree_leaf
        fpk_total += results[-1].score
    return fpk_total / len(queries), leaves_total / len(queries)


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig6_cost_validation_vary_k(benchmark, name):
    tree, model, normalizer, queries = _setup(name)

    measured_fpk, measured_leaves = [], []
    for k in K_VALUES:
        fpk, leaves = _measure(tree, queries, normalizer, k)
        measured_fpk.append(fpk)
        measured_leaves.append(leaves)
    estimated_fpk = [model.estimate_fpk(k, ALPHA0) for k in K_VALUES]
    estimated_leaves = [
        model.estimate_node_accesses(k=k, alpha0=ALPHA0) for k in K_VALUES
    ]

    print_series(
        "Figure 6(%s): f(pk), measured vs estimated" % name,
        "k",
        K_VALUES,
        {"measured": measured_fpk, "estimated": estimated_fpk},
        fmt="%10.3f",
    )
    print_series(
        "Figure 6(%s): leaf node accesses, measured vs estimated" % name,
        "k",
        K_VALUES,
        {"measured": measured_leaves, "estimated": estimated_leaves},
        fmt="%10.1f",
    )

    # f(pk) increases with k, and the estimates are close for k >= 5.
    assert measured_fpk == sorted(measured_fpk)
    assert estimated_fpk == sorted(estimated_fpk)
    for k, measured, estimated in zip(K_VALUES, measured_fpk, estimated_fpk):
        if k >= 5:
            assert estimated == pytest.approx(measured, rel=0.5), "k=%d" % k

    # Node accesses grow with k; estimates share the trend and stay in
    # the same order of magnitude.
    assert measured_leaves == sorted(measured_leaves)
    assert estimated_leaves == sorted(estimated_leaves)
    for measured, estimated in zip(measured_leaves, estimated_leaves):
        assert measured / 6 <= estimated <= measured * 6

    benchmark(
        knnta_search, tree, queries[0]._replace(k=10), normalizer=normalizer
    )
