"""Table 2 — power-law fits of the aggregate distributions.

For each data set the paper reports the number of tested POIs ``n``, the
fitted exponent ``beta-hat``, the lower bound ``x-hat-min`` and the
bootstrap goodness-of-fit p-value, arguing all four follow a power law
(p-value > 0.1).  This bench fits the synthetic stand-ins with the same
Clauset–Shalizi–Newman recipe and prints the same row layout.
"""

import pytest

from _harness import BENCH_SCALES, get_dataset, print_series
from repro.analysis.powerlaw import fit_discrete_powerlaw, goodness_of_fit

PAPER_ROWS = {
    # name: (n, beta, xmin, p-value) as published.
    "NYC": (72273, 3.20, 31, 0.68),
    "LA": (45591, 3.07, 16, 0.18),
    "GW": (1280969, 2.82, 85, 0.29),
    "GS": (182968, 2.19, 59, 0.21),
}


@pytest.mark.parametrize("name", ["NYC", "LA", "GW", "GS"])
def test_table2_powerlaw_fit(benchmark, name):
    data = get_dataset(name)
    totals = [v for v in data.totals().values() if v > 0]

    fit = benchmark(fit_discrete_powerlaw, totals)
    gof = goodness_of_fit(totals, fit, n_bootstrap=20, seed=1)

    paper_n, paper_beta, paper_xmin, paper_p = PAPER_ROWS[name]
    print_series(
        "Table 2 (%s, scale=%s): power-law fit, paper vs measured" % (name, BENCH_SCALES[name]),
        "row",
        ["n", "beta", "xmin", "p-value"],
        {
            "paper": [paper_n, paper_beta, paper_xmin, paper_p],
            "measured": [len(totals), fit.beta, fit.xmin, gof.p_value],
        },
        fmt="%10.2f",
    )

    # Shape checks: the generator is calibrated to the published tail.
    assert fit.beta == pytest.approx(paper_beta, abs=0.5)
    assert gof.p_value > 0.1, "power-law hypothesis should not be ruled out"
