"""Out-of-process shard workers vs the in-process cluster, under load.

The worker processes' pitch is throughput: an in-process cluster
answers every concurrent query on one interpreter — eight client
threads contend for one GIL no matter how many shards the plan has —
while ``RemoteClusterTree`` fans each query out to worker *processes*
that search their shards on their own interpreters.  This benchmark
drives the same concurrent workload (8 client threads) against both
coordinators at 4 and 8 shards, asserting:

* identity inline — every answer from both coordinators, including all
  answers produced during the timed concurrent runs, is bit-identical
  to the single-tree oracle;
* a wall-clock win — at 8 shards / 8 workers the worker cluster must
  clear ``MIN_SPEEDUP`` over in-process (1.5x full-size; enforced only
  on hosts with at least ``MIN_CORES`` cores, because the win *is*
  multi-core parallelism — on a one- or two-core box eight workers
  time-slice one interpreter's worth of CPU plus IPC, and no honest
  harness can show a speedup that the hardware cannot produce; the
  emitted JSON records the host's core count and whether the bar was
  enforced, so trend tracking never mistakes a skipped bar for a met
  one);
* bound pruning — with sequential dispatch the coordinator's
  shards-contacted counters show whole shards skipped per selective
  query without a byte read from their workers.

``REPRO_BENCH_SMOKE=1`` shrinks the fixture.  The series is emitted as
``BENCH_workers.json`` for CI trend tracking.
"""

import functools
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

from _harness import print_series
from repro import ClusterTree, TARTree, datasets
from repro.cluster import RemoteClusterTree, save_cluster
from repro.datasets.workload import generate_queries

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DATASET = "NYC"
SCALE = 0.05 if SMOKE else 0.3
SEED = 42
SHARD_COUNTS = (4, 8)
N_QUERIES = 24 if SMOKE else 96
CONCURRENCY = 8

#: Wall-clock bar for 8 workers over in-process at 8 concurrent
#: queries, and the core count below which it cannot be meaningful:
#: the speedup is multi-core parallelism, so a host that cannot run
#: several workers simultaneously only measures IPC overhead.  The
#: smoke leg and small hosts assert sanity + identity instead.
MIN_CORES = 4
MULTICORE = (os.cpu_count() or 1) >= MIN_CORES
MIN_SPEEDUP = 1.5 if (not SMOKE and MULTICORE) else 0.0

#: Selective workload for the pruning measurement: small k and a
#: distance-dominant alpha0 keep distant shards out of the top-k, so
#: their bounds prune them before a single worker round-trip.
SELECTIVE = {"k": 2, "alpha0": 0.95}


@functools.lru_cache(maxsize=None)
def get_data():
    return datasets.make(DATASET, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=None)
def get_single_tree():
    return TARTree.build(get_data())


@functools.lru_cache(maxsize=None)
def get_queries(k=10, alpha0=0.3):
    return generate_queries(
        get_data(), n_queries=N_QUERIES, k=k, alpha0=alpha0, seed=17
    )


@functools.lru_cache(maxsize=None)
def expected_answers(k=10, alpha0=0.3):
    tree = get_single_tree()
    return [
        [tuple(row) for row in tree.query(query)]
        for query in get_queries(k, alpha0)
    ]


def timed_concurrent_run(coordinator, queries):
    """Drive ``queries`` through ``CONCURRENCY`` client threads.

    Returns ``(elapsed_seconds, answers)`` with answers in query order
    so the caller can assert identity on exactly what the timed run
    produced.
    """
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        start = time.perf_counter()
        answers = list(pool.map(coordinator.query, queries))
        elapsed = time.perf_counter() - start
    return elapsed, [[tuple(row) for row in answer] for answer in answers]


def test_worker_processes_beat_inprocess_under_concurrent_load(tmp_path):
    queries = get_queries()
    oracle = expected_answers()
    selective_queries = get_queries(**SELECTIVE)
    selective_oracle = expected_answers(**SELECTIVE)
    rows = []
    speedup_series = {"speedup": []}
    contact_series = {"visited/query": [], "pruned/query": []}

    for num_shards in SHARD_COUNTS:
        inproc = ClusterTree.build(
            get_data(), num_shards=num_shards, parallelism=num_shards
        )
        directory = tmp_path / ("c%d" % num_shards)
        save_cluster(inproc, str(directory))

        # Warm both sides once (page caches, lazy structures), checking
        # identity along the way.
        warm_elapsed, warm = timed_concurrent_run(inproc, queries)
        assert warm == oracle, "in-process diverged at %d shards" % num_shards
        inproc_s, answers = timed_concurrent_run(inproc, queries)
        assert answers == oracle

        remote = RemoteClusterTree.start(str(directory))
        try:
            warm_elapsed, warm = timed_concurrent_run(remote, queries)
            assert warm == oracle, "workers diverged at %d shards" % num_shards
            workers_s, answers = timed_concurrent_run(remote, queries)
            assert answers == oracle

            # Pruning proof: sequential dispatch orders shards by bound
            # and stops at the first that cannot beat the running k-th
            # score, so the contact counters are the certificate.
            remote.parallelism = 1
            before = remote.counters()
            for index, query in enumerate(selective_queries):
                answer = [tuple(row) for row in remote.query(query)]
                assert answer == selective_oracle[index]
            counters = remote.counters()
            visited = counters["shards.visited"] - before["shards.visited"]
            pruned = counters["shards.pruned"] - before["shards.pruned"]
            assert visited + pruned == num_shards * len(selective_queries)
            assert pruned > 0, (
                "the bound pruned nothing at %d shards" % num_shards
            )
        finally:
            remote.close()
        inproc.close()

        speedup = inproc_s / workers_s if workers_s > 0 else float("inf")
        n = float(len(selective_queries))
        rows.append(
            {
                "shards": num_shards,
                "n_queries": len(queries),
                "concurrency": CONCURRENCY,
                "inprocess_s": inproc_s,
                "workers_s": workers_s,
                "speedup": speedup,
                "selective_visited_per_query": visited / n,
                "selective_pruned_per_query": pruned / n,
            }
        )
        speedup_series["speedup"].append(speedup)
        contact_series["visited/query"].append(visited / n)
        contact_series["pruned/query"].append(pruned / n)

    print_series(
        "Worker processes vs in-process (%s x%g, %d queries x%d threads): "
        "wall-clock speedup" % (DATASET, SCALE, len(queries), CONCURRENCY),
        "#shards",
        SHARD_COUNTS,
        speedup_series,
        fmt="%10.2f",
    )
    print_series(
        "Selective workload (k=%(k)d, alpha0=%(alpha0).2f): shards "
        "contacted per query (sequential dispatch)" % SELECTIVE,
        "#shards",
        SHARD_COUNTS,
        contact_series,
        fmt="%10.2f",
    )

    final = rows[-1]
    assert final["shards"] == 8
    assert final["speedup"] > MIN_SPEEDUP, (
        "8 workers managed only %.2fx over in-process (bar %.1fx on "
        "%r cores)" % (final["speedup"], MIN_SPEEDUP, os.cpu_count())
    )

    out_path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_workers.json"
    )
    with open(os.path.abspath(out_path), "w") as handle:
        json.dump(
            {
                "dataset": DATASET,
                "scale": SCALE,
                "smoke": SMOKE,
                "cpu_count": os.cpu_count(),
                "speedup_bar_enforced": MIN_SPEEDUP > 0.0,
                "n_queries": len(queries),
                "concurrency": CONCURRENCY,
                "min_speedup": MIN_SPEEDUP,
                "selective_params": SELECTIVE,
                "rows": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
