"""Figure 10 — TAR-tree vs alternatives, varying alpha0.

For alpha0 in {0.1 .. 0.9} the paper reports per-query CPU time and node
accesses (GW, GS).  As alpha0 approaches 1, IND-spa improves and IND-agg
deteriorates (each is optimised for one dimension), while the TAR-tree
stays almost flat and never loses to the specialist on its home turf.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    geometric_mean_ratio,
    get_tree,
    get_workload,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search

ALPHA_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig10_vary_alpha(benchmark, name):
    trees = {s: get_tree(name, strategy=s) for s in STRATEGIES}
    workload = get_workload(name)

    # Warm the TIA buffers so the first sweep point is not measured cold.
    for tree in trees.values():
        measure_index(tree, list(workload)[:40])

    cpu = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    cpu["baseline"] = []
    nodes = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    for alpha0 in ALPHA_VALUES:
        queries = workload.with_params(alpha0=alpha0)
        for strategy in STRATEGIES:
            result = measure_index(trees[strategy], queries)
            cpu[STRATEGY_LABELS[strategy]].append(result.cpu_ms)
            nodes[STRATEGY_LABELS[strategy]].append(result.node_accesses)
        cpu["baseline"].append(
            measure_baseline(trees["integral3d"], queries).cpu_ms
        )

    print_series(
        "Figure 10(%s): CPU time (ms) per query vs alpha0" % name,
        "alpha0",
        ALPHA_VALUES,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 10(%s): node accesses per query vs alpha0" % name,
        "alpha0",
        ALPHA_VALUES,
        nodes,
        fmt="%10.1f",
    )

    # The TAR-tree beats both alternatives and the scan on average CPU.
    for rival in ("IND-spa", "IND-agg", "baseline"):
        assert geometric_mean_ratio(cpu["TAR-tree"], cpu[rival]) > 1.0, rival

    # Even at the specialists' favourite extremes the TAR-tree stays
    # competitive: alpha0=0.9 favours IND-spa, 0.1 favours IND-agg.  (At
    # the reproduction's scale the 3-D tree pays its 36-vs-50 fan-out
    # penalty on pure-spatial queries, so allow a constant factor.)
    assert nodes["TAR-tree"][-1] <= nodes["IND-spa"][-1] * 1.7
    assert nodes["TAR-tree"][0] <= nodes["IND-agg"][0] * 1.7
    assert cpu["TAR-tree"][-1] <= cpu["IND-spa"][-1] * 1.3
    assert cpu["TAR-tree"][0] <= cpu["IND-agg"][0] * 2.5

    # IND-agg deteriorates as the spatial weight grows.
    assert nodes["IND-agg"][-1] > nodes["IND-agg"][0]

    benchmark(knnta_search, trees["integral3d"], workload[0])
