"""Service micro-batching — shared vs individual node accesses.

The query service's pitch is that concurrent same-interval requests
coalesce into one collective batch and therefore cost *fewer total node
accesses* than the same requests run one at a time.  This benchmark
measures exactly that at 1, 8 and 64 concurrent queries over one
interval preset, asserts the batched total strictly undercuts the
individual total from 8 concurrent queries up, and emits the series as
``BENCH_service.json`` for CI trend tracking.

At concurrency 1 the service falls back to a plain ``knnta_search`` —
the totals must then *match* the individual run, not beat it.
"""

import json
import os

import pytest

from _harness import get_dataset, get_tree, get_workload, print_series
from repro.core.collective import process_individually
from repro.service import QueryService, ServiceConfig
from repro.temporal.epochs import TimeInterval

CONCURRENCY_LEVELS = (1, 8, 64)
DATASET = "GS"
INTERVAL_DAYS = 28.0


def make_queries(n):
    """``n`` distinct-point queries sharing one interval preset."""
    data = get_dataset(DATASET)
    workload = get_workload(DATASET, n_queries=n, seed=21)
    preset = TimeInterval(data.span_days - INTERVAL_DAYS, data.span_days)
    return [query._replace(interval=preset) for query in workload]


def run_service_batch(tree, queries):
    """All queries enqueued first, then served: one deterministic batch."""
    config = ServiceConfig(workers=1, batch_size=max(len(queries), 1), linger=0.05)
    service = QueryService(tree, config=config, autostart=False)
    pending = [service.submit(query) for query in queries]
    service.start()
    results = [request.result(timeout=120) for request in pending]
    service.close()
    return results, service.service_stats


def test_service_batching_beats_individual(benchmark):
    tree = get_tree(DATASET)

    rows = []
    series = {"individual": [], "service": []}
    for concurrency in CONCURRENCY_LEVELS:
        queries = make_queries(concurrency)

        snap = tree.stats.snapshot()
        individual_results = process_individually(tree, queries)
        individual_nodes = tree.stats.diff(snap).rtree_nodes

        service_results, stats = run_service_batch(tree, queries)
        service_nodes = stats.access_totals.rtree_nodes

        # Identical answers first — the saving must not change results.
        assert service_results == individual_results

        if concurrency >= 8:
            # The acceptance bar: strictly fewer total node accesses.
            assert service_nodes < individual_nodes, (
                "no batching win at %d concurrent queries: %d >= %d"
                % (concurrency, service_nodes, individual_nodes)
            )
        else:
            assert service_nodes == individual_nodes

        series["individual"].append(float(individual_nodes))
        series["service"].append(float(service_nodes))
        rows.append(
            {
                "concurrency": concurrency,
                "individual_nodes": individual_nodes,
                "service_nodes": service_nodes,
                "ratio": (
                    individual_nodes / float(service_nodes) if service_nodes else None
                ),
                "batches": stats.batches,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(stats.batch_size_histogram.items())
                },
                "service_access_totals": stats.access_totals.as_dict(),
            }
        )

    print_series(
        "Service micro-batching (%s): total node accesses vs concurrency" % DATASET,
        "#concurrent",
        CONCURRENCY_LEVELS,
        series,
        fmt="%10.0f",
    )

    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
    with open(os.path.abspath(out_path), "w") as handle:
        json.dump(
            {"dataset": DATASET, "interval_days": INTERVAL_DAYS, "levels": rows},
            handle,
            indent=2,
            sort_keys=True,
        )

    queries = make_queries(8)
    benchmark(lambda: run_service_batch(tree, queries))


@pytest.mark.parametrize("concurrency", [8])
def test_service_batch_is_one_collective_batch(concurrency):
    # The deterministic setup really coalesces: one batch, full size.
    tree = get_tree(DATASET)
    queries = make_queries(concurrency)
    _, stats = run_service_batch(tree, queries)
    assert stats.batches == 1
    assert stats.batch_size_histogram == {concurrency: 1}
