"""Figure 12 — effect of the R-tree node size (512 .. 8192 bytes).

Bigger nodes mean more entries per access: the paper finds CPU time
rising roughly linearly with node size for the TAR-tree, node accesses
rising for all indexes (a node covers more space, weakening pruning),
with IND-spa growing fastest and the TAR-tree slowest — and the TAR-tree
winning under every setting.
"""

import pytest

from _harness import (
    STRATEGIES,
    STRATEGY_LABELS,
    geometric_mean_ratio,
    get_tree,
    get_workload,
    measure_baseline,
    measure_index,
    print_series,
)
from repro.core.knnta import knnta_search

NODE_SIZES = (512, 1024, 2048, 4096, 8192)


@pytest.mark.parametrize("name", ["GW", "GS"])
def test_fig12_node_size(benchmark, name):
    workload = get_workload(name)

    cpu = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    nodes = {STRATEGY_LABELS[s]: [] for s in STRATEGIES}
    for node_size in NODE_SIZES:
        for strategy in STRATEGIES:
            tree = get_tree(name, strategy=strategy, node_size=node_size)
            result = measure_index(tree, workload)
            cpu[STRATEGY_LABELS[strategy]].append(result.cpu_ms)
            nodes[STRATEGY_LABELS[strategy]].append(result.node_accesses)
    baseline = measure_baseline(get_tree(name), workload).cpu_ms

    print_series(
        "Figure 12(%s): CPU time (ms) per query vs node size (bytes); "
        "baseline %.2f ms" % (name, baseline),
        "node size",
        NODE_SIZES,
        cpu,
        fmt="%10.3f",
    )
    print_series(
        "Figure 12(%s): node accesses per query vs node size (bytes)" % name,
        "node size",
        NODE_SIZES,
        nodes,
        fmt="%10.1f",
    )

    # Node accesses shrink as nodes grow (fewer, bigger nodes) — the
    # paper plots the reverse for its disk-page model, but in both cases
    # the TAR-tree dominates IND-agg and the baseline and tracks IND-spa.
    assert geometric_mean_ratio(nodes["TAR-tree"], nodes["IND-agg"]) > 1.0
    assert geometric_mean_ratio(nodes["TAR-tree"], nodes["IND-spa"]) > 0.8

    # CPU: the TAR-tree stays fastest on average and beats the baseline
    # at every node size.
    for rival in ("IND-spa", "IND-agg"):
        assert geometric_mean_ratio(cpu["TAR-tree"], cpu[rival]) > 1.0, rival
    assert all(value < baseline for value in cpu["TAR-tree"])

    benchmark(knnta_search, get_tree(name), workload[0])
