"""Incremental subscription advances vs re-running every query.

A :class:`~repro.continuous.SubscriptionRegistry` claims that sliding a
window costs far less than re-issuing each subscriber's one-shot query:
most advances re-score only the changed candidates against the retained
frontier, touching zero R-tree nodes, and the bound-pruned fresh search
is the exception rather than the rule.  This benchmark replays a data
set's tail through a subscribed tree and measures both sides of that
claim — R-tree node accesses and wall-clock per advance — for the
incremental path against a re-run-everything baseline, across
subscriber fan-outs and window sizes.  Identity is asserted inline:
after every advance each subscription's rows must equal the one-shot
answer.  The series lands in ``BENCH_continuous.json``;
``REPRO_BENCH_SMOKE=1`` shrinks the fixture for the CI smoke leg.
"""

import functools
import json
import os
import random
import time

from repro import KNNTAQuery, TARTree, datasets
from repro.continuous import SubscriptionRegistry, window_state
from repro.datasets.streaming import epoch_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DATASET = "GS"
SCALE = 0.3 if SMOKE else 1.0
SEED = 42

SUBSCRIBERS = (1, 8, 64)
WINDOWS = (2, 8)

#: The full run must show a real saving in node accesses; the smoke leg
#: (tiny fixture) only has to prove incremental is not *more* I/O.
MAX_NODE_RATIO = 1.0 if SMOKE else 0.5


@functools.lru_cache(maxsize=None)
def get_data():
    return datasets.make(DATASET, scale=SCALE, seed=SEED)


def one_shot_query(tree, point, window, k):
    state = window_state(tree.clock, tree.current_time, window)
    return KNNTAQuery(point, state.interval, k=k)


def run_config(n_subs, window):
    """Replay the tail once; return the per-advance cost aggregates."""
    data = get_data()
    tree = TARTree.build(data.snapshot(0.7))
    rng = random.Random(101 + n_subs * 13 + window)
    registry = SubscriptionRegistry(tree)
    subs = []
    for _ in range(n_subs):
        point = (
            rng.uniform(tree.world.lows[0], tree.world.highs[0]),
            rng.uniform(tree.world.lows[1], tree.world.highs[1]),
        )
        sub, _ = registry.subscribe(point, window, k=10)
        subs.append((sub, point))
    advances = 0
    incremental_nodes = rerun_nodes = 0
    incremental_s = rerun_s = 0.0
    stream = epoch_stream(
        data, tree.clock, start_time=tree.current_time,
        poi_ids=list(tree.poi_ids()),
    )
    for epoch, counts in stream:
        tree.digest_epoch(epoch, counts)

        snap = tree.stats.snapshot()
        start = time.perf_counter()
        registry.advance()
        incremental_s += time.perf_counter() - start
        incremental_nodes += tree.stats.diff(snap).rtree_nodes

        snap = tree.stats.snapshot()
        start = time.perf_counter()
        oracles = [
            tree.query(one_shot_query(tree, point, window, k=10))
            for _, point in subs
        ]
        rerun_s += time.perf_counter() - start
        rerun_nodes += tree.stats.diff(snap).rtree_nodes

        for (sub, _), oracle in zip(subs, oracles):
            assert list(sub.last_rows) == list(oracle.rows), (
                "subscription diverged from one-shot at epoch %d" % epoch
            )
        advances += 1
    counters = registry.counters()
    registry.close()
    assert advances >= 3, "tail too short to measure anything"
    assert counters["evals.errors"] == 0
    return {
        "subscribers": n_subs,
        "window": window,
        "advances": advances,
        "incremental_nodes": incremental_nodes,
        "rerun_nodes": rerun_nodes,
        "incremental_s": incremental_s,
        "rerun_s": rerun_s,
        "evals_incremental": counters["evals.incremental"],
        "evals_fresh": counters["evals.fresh"],
    }


def test_incremental_advances_beat_rerunning():
    rows = [
        run_config(n_subs, window)
        for n_subs in SUBSCRIBERS
        for window in WINDOWS
    ]
    for row in rows:
        assert row["rerun_nodes"] > 0
        ratio = row["incremental_nodes"] / row["rerun_nodes"]
        assert ratio <= MAX_NODE_RATIO, (
            "%(subscribers)d subs, window %(window)d: incremental touched "
            "%(incremental_nodes)d nodes vs %(rerun_nodes)d re-run"
            % row
            + " (ratio %.2f, bar %.2f)" % (ratio, MAX_NODE_RATIO)
        )

    out_path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_continuous.json"
    )
    with open(os.path.abspath(out_path), "w") as handle:
        json.dump(
            {
                "dataset": DATASET,
                "scale": SCALE,
                "smoke": SMOKE,
                "max_node_ratio": MAX_NODE_RATIO,
                "results": rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    print()
    for row in rows:
        print(
            "%3d subs  window %d  advances %2d  nodes %6d vs %6d  "
            "wall %6.3fs vs %6.3fs  (incr/fresh evals %d/%d)"
            % (
                row["subscribers"], row["window"], row["advances"],
                row["incremental_nodes"], row["rerun_nodes"],
                row["incremental_s"], row["rerun_s"],
                row["evals_incremental"], row["evals_fresh"],
            )
        )
