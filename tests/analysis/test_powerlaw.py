"""Discrete power-law fitting (Clauset–Shalizi–Newman)."""

import numpy as np
import pytest

from repro.analysis.powerlaw import (
    fit_discrete_powerlaw,
    goodness_of_fit,
    powerlaw_cdf,
    sample_discrete_powerlaw,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(1234)


class TestSampler:
    def test_respects_xmin(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=2.5, xmin=7, size=5000)
        assert sample.min() >= 7

    def test_integer_valued(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=2.5, xmin=3, size=100)
        assert sample.dtype.kind == "i"

    def test_heavier_tail_for_smaller_beta(self, rng):
        light = sample_discrete_powerlaw(rng, beta=3.5, xmin=1, size=20000)
        heavy = sample_discrete_powerlaw(rng, beta=2.0, xmin=1, size=20000)
        assert heavy.mean() > light.mean()


class TestCdf:
    def test_bounds(self):
        assert powerlaw_cdf(1, beta=2.5, xmin=1) == pytest.approx(
            1 - 1 / float(np.round(1 / (1 - powerlaw_cdf(1, 2.5, 1)), 6) or 1),
            abs=1,
        )
        # P(X <= xmin) equals p(xmin) exactly.
        from scipy.special import zeta

        p_xmin = 1.0 / zeta(2.5, 1)
        assert powerlaw_cdf(1, 2.5, 1) == pytest.approx(p_xmin)

    def test_monotone(self):
        values = powerlaw_cdf(np.arange(1, 100), beta=2.2, xmin=1)
        assert np.all(np.diff(values) > 0)
        assert values[-1] < 1.0


class TestFit:
    def test_recovers_beta_with_known_xmin(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=2.8, xmin=5, size=20000)
        fit = fit_discrete_powerlaw(sample, xmin=5)
        assert fit.beta == pytest.approx(2.8, abs=0.1)
        assert fit.xmin == 5
        assert fit.n_tail == len(sample)

    @pytest.mark.parametrize("beta", [2.2, 2.8, 3.2])
    def test_recovers_beta_scanning_xmin(self, rng, beta):
        sample = sample_discrete_powerlaw(rng, beta=beta, xmin=4, size=15000)
        fit = fit_discrete_powerlaw(sample)
        assert fit.beta == pytest.approx(beta, abs=0.2)

    def test_finds_xmin_with_contaminated_body(self, rng):
        tail = sample_discrete_powerlaw(rng, beta=2.5, xmin=20, size=6000)
        body = rng.integers(1, 20, size=14000)  # uniform body, not power law
        fit = fit_discrete_powerlaw(np.concatenate([tail, body]))
        assert 14 <= fit.xmin <= 28
        assert fit.beta == pytest.approx(2.5, abs=0.25)

    def test_rejects_too_small_samples(self):
        with pytest.raises(ValueError):
            fit_discrete_powerlaw([5])
        with pytest.raises(ValueError):
            fit_discrete_powerlaw([0, -1, 0])

    def test_drops_non_positive(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=2.5, xmin=1, size=5000)
        fit_clean = fit_discrete_powerlaw(sample, xmin=1)
        fit_dirty = fit_discrete_powerlaw(list(sample) + [0] * 100, xmin=1)
        assert fit_dirty.beta == pytest.approx(fit_clean.beta)

    def test_ks_distance_small_for_true_model(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=2.5, xmin=3, size=10000)
        fit = fit_discrete_powerlaw(sample, xmin=3)
        assert fit.ks_distance < 0.03


class TestGoodnessOfFit:
    def test_true_powerlaw_is_plausible(self):
        # Fixed draw: under H0 the p-value is uniform, so an arbitrary
        # seed could legitimately dip below the 0.1 threshold; this seed
        # gives a comfortably central sample (p ~ 0.9 / 0.7 across
        # bootstrap seeds).
        draw = np.random.default_rng(11)
        sample = sample_discrete_powerlaw(draw, beta=2.6, xmin=5, size=2000)
        fit = fit_discrete_powerlaw(sample)
        gof = goodness_of_fit(sample, fit, n_bootstrap=30, seed=1)
        assert gof.p_value > 0.1
        assert gof.plausible

    def test_geometric_data_is_rejected(self, rng):
        # Geometric (exponential) tails are the canonical non-power-law.
        sample = rng.geometric(0.05, size=4000)
        fit = fit_discrete_powerlaw(sample)
        gof = goodness_of_fit(sample, fit, n_bootstrap=30, seed=2)
        assert gof.p_value <= 0.1
        assert not gof.plausible

    def test_p_value_range(self, rng):
        sample = sample_discrete_powerlaw(rng, beta=3.0, xmin=2, size=800)
        gof = goodness_of_fit(sample, n_bootstrap=10, seed=3)
        assert 0.0 <= gof.p_value <= 1.0
        assert gof.n_bootstrap == 10
