"""Concentration statistics (the paper's 80/20 observation)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.concentration import (
    gini_coefficient,
    lorenz_curve,
    pareto_share,
)


class TestParetoShare:
    def test_uniform_distribution(self):
        assert pareto_share([5] * 100, 0.2) == pytest.approx(0.2)

    def test_fully_concentrated(self):
        values = [0] * 99 + [100]
        assert pareto_share(values, 0.01) == pytest.approx(1.0)

    def test_empty_and_zero(self):
        assert pareto_share([], 0.2) == 0.0
        assert pareto_share([0, 0, 0], 0.2) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            pareto_share([1, 2], 0.0)
        with pytest.raises(ValueError):
            pareto_share([1, 2], 1.5)

    def test_powerlaw_data_is_top_heavy(self):
        from repro.analysis.powerlaw import sample_discrete_powerlaw

        rng = np.random.default_rng(0)
        sample = sample_discrete_powerlaw(rng, beta=2.0, xmin=1, size=20000)
        share = pareto_share(sample, 0.2)
        # The paper's "roughly 80% of check-ins at 20% of the POIs".
        assert share > 0.6

    def test_synthetic_lbsn_is_top_heavy(self):
        from repro import datasets

        data = datasets.make("GS", scale=0.02, seed=1)
        totals = [v for v in data.totals().values()]
        assert pareto_share(totals, 0.2) > 0.6


class TestGini:
    def test_equal_values_are_zero(self):
        assert gini_coefficient([7] * 50 ) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_near_one(self):
        values = [0] * 999 + [1]
        assert gini_coefficient(values) > 0.99

    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_bounds(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 100, size=500)
        assert 0.0 <= gini_coefficient(values) <= 1.0


class TestLorenz:
    def test_endpoints(self):
        curve = lorenz_curve([1, 2, 3, 4], points=5)
        assert curve[0] == (0.0, 0.0)
        assert curve[-1][0] == 1.0
        assert curve[-1][1] == pytest.approx(1.0)

    def test_convexity_for_unequal_data(self):
        curve = lorenz_curve([1, 1, 1, 100], points=11)
        shares = [mass for _, mass in curve]
        assert shares == sorted(shares)
        # Lorenz curve lies below the diagonal for unequal data.
        assert all(mass <= fraction + 1e-9 for fraction, mass in curve)

    def test_equal_data_is_diagonal(self):
        curve = lorenz_curve([3, 3, 3], points=4)
        for fraction, mass in curve:
            assert mass == pytest.approx(fraction, abs=1e-9)

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            lorenz_curve([1, 2], points=1)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
def test_property_pareto_share_at_least_fraction(values):
    # The top 20% always hold at least 20% of the mass (when any exists).
    share = pareto_share(values, 0.2)
    if sum(values) > 0:
        assert share >= 0.2 - 1e-6 or share >= (1 / len(values)) - 1e-6


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
def test_property_gini_within_unit_interval(values):
    assert -1e-9 <= gini_coefficient(values) <= 1.0
