"""Additional epoch-clock coverage: schedules, dispatch, edge times."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.tia import IntervalSemantics


class TestExponentialSchedule:
    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            VariedEpochClock.exponential(0.0, 1.0, count=0)

    def test_factor_one_is_uniform(self):
        clock = VariedEpochClock.exponential(0.0, 2.0, count=5, factor=1.0)
        for i in range(5):
            ts, te = clock.bounds(i)
            assert te - ts == pytest.approx(2.0)

    def test_lengths_double(self):
        clock = VariedEpochClock.exponential(10.0, 1.0, count=4, factor=2.0)
        lengths = [clock.bounds(i)[1] - clock.bounds(i)[0] for i in range(4)]
        assert lengths == [1.0, 2.0, 4.0, 8.0]

    def test_nonzero_t0(self):
        clock = VariedEpochClock.exponential(100.0, 1.0, count=3)
        assert clock.t0 == 100.0
        assert clock.epoch_of(100.0) == 0

    def test_tail_is_open(self):
        clock = VariedEpochClock.exponential(0.0, 1.0, count=2)
        tail = clock.epoch_of(10 ** 9)
        assert clock.bounds(tail)[1] == math.inf

    def test_bounds_beyond_tail_rejected(self):
        clock = VariedEpochClock([0.0, 1.0])
        with pytest.raises(ValueError):
            clock.bounds(5)
        with pytest.raises(ValueError):
            clock.bounds(-1)


class TestEpochRangeDispatch:
    def test_varied_clock_dispatch(self):
        clock = VariedEpochClock([0.0, 1.0, 3.0, 7.0])
        interval = TimeInterval(0.5, 6.0)
        intersecting = clock.epoch_range(interval, IntervalSemantics.INTERSECTS)
        contained = clock.epoch_range(interval, IntervalSemantics.CONTAINED)
        assert list(intersecting) == [0, 1, 2]
        assert list(contained) == [1]  # only epoch [1, 3) fits inside

    def test_contained_empty_when_interval_tiny(self):
        clock = EpochClock(0.0, 10.0)
        assert list(clock.epochs_contained(TimeInterval(1.0, 2.0))) == []

    def test_point_interval_intersects_one_epoch(self):
        clock = EpochClock(0.0, 10.0)
        assert list(clock.epochs_intersecting(TimeInterval(25.0, 25.0))) == [2]


class TestTimeBeforeStart:
    def test_varied_rejects_prehistory(self):
        clock = VariedEpochClock([5.0, 6.0])
        with pytest.raises(ValueError):
            clock.epoch_of(4.0)

    def test_interval_clipped_to_t0(self):
        clock = EpochClock(10.0, 5.0)
        # An interval starting before t0 clips to the first epoch.
        epochs = list(clock.epochs_intersecting(TimeInterval(0.0, 12.0)))
        assert epochs[0] == 0


@given(
    st.lists(
        st.floats(0.1, 10, allow_nan=False), min_size=1, max_size=8
    ),
    st.floats(0, 50, allow_nan=False),
)
def test_property_varied_bounds_partition_time(lengths, t_offset):
    boundaries = [0.0]
    for length in lengths:
        boundaries.append(boundaries[-1] + length)
    clock = VariedEpochClock(boundaries)
    t = t_offset
    index = clock.epoch_of(t)
    ts, te = clock.bounds(index)
    assert ts <= t + 1e-9
    assert t < te + 1e-9


@given(st.integers(0, 40), st.integers(1, 40))
def test_property_contained_subset_of_intersecting_varied(start, length):
    clock = VariedEpochClock.exponential(0.0, 1.0, count=6)
    interval = TimeInterval(float(start), float(start + length))
    contained = set(clock.epochs_contained(interval))
    intersecting = set(clock.epochs_intersecting(interval))
    assert contained <= intersecting
