"""Epoch clocks and time intervals."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal.epochs import EpochClock, TimeInterval, VariedEpochClock
from repro.temporal.tia import IntervalSemantics


class TestTimeInterval:
    def test_basic(self):
        interval = TimeInterval(2, 9)
        assert interval.length == 7
        assert interval.contains_time(2)
        assert interval.contains_time(9)
        assert not interval.contains_time(9.001)

    def test_point_interval_allowed(self):
        assert TimeInterval(3, 3).length == 0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(5, 4)

    def test_intersects_epoch(self):
        interval = TimeInterval(5, 10)
        assert interval.intersects(4, 6)
        assert interval.intersects(9, 12)
        assert not interval.intersects(10.5, 11)  # starts after the end
        assert not interval.intersects(3, 5)  # epoch [3,5) is open at 5

    def test_contains_epoch(self):
        interval = TimeInterval(5, 10)
        assert interval.contains(5, 10)
        assert interval.contains(6, 8)
        assert not interval.contains(4, 8)
        assert not interval.contains(8, 11)

    def test_equality_and_hash(self):
        assert TimeInterval(1, 2) == TimeInterval(1, 2)
        assert hash(TimeInterval(1, 2)) == hash(TimeInterval(1, 2))
        assert TimeInterval(1, 2) != TimeInterval(1, 3)


class TestEpochClock:
    def test_epoch_of(self):
        clock = EpochClock(0.0, 7.0)
        assert clock.epoch_of(0.0) == 0
        assert clock.epoch_of(6.999) == 0
        assert clock.epoch_of(7.0) == 1
        assert clock.epoch_of(70.0) == 10

    def test_nonzero_t0(self):
        clock = EpochClock(100.0, 2.0)
        assert clock.epoch_of(100.0) == 0
        assert clock.epoch_of(103.9) == 1

    def test_time_before_t0_rejected(self):
        clock = EpochClock(10.0, 1.0)
        with pytest.raises(ValueError):
            clock.epoch_of(9.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            EpochClock(0.0, 0.0)

    def test_bounds(self):
        clock = EpochClock(0.0, 7.0)
        assert clock.bounds(0) == (0.0, 7.0)
        assert clock.bounds(3) == (21.0, 28.0)
        with pytest.raises(ValueError):
            clock.bounds(-1)

    def test_num_epochs(self):
        clock = EpochClock(0.0, 7.0)
        assert clock.num_epochs(0.0) == 0
        assert clock.num_epochs(7.0) == 1
        assert clock.num_epochs(7.1) == 2
        assert clock.num_epochs(21.0) == 3

    def test_epochs_intersecting(self):
        clock = EpochClock(0.0, 7.0)
        assert list(clock.epochs_intersecting(TimeInterval(0, 6))) == [0]
        assert list(clock.epochs_intersecting(TimeInterval(0, 7))) == [0, 1]
        assert list(clock.epochs_intersecting(TimeInterval(8, 20))) == [1, 2]
        assert list(clock.epochs_intersecting(TimeInterval(7, 7))) == [1]

    def test_epochs_contained(self):
        clock = EpochClock(0.0, 7.0)
        assert list(clock.epochs_contained(TimeInterval(0, 14))) == [0, 1]
        assert list(clock.epochs_contained(TimeInterval(1, 14))) == [1]
        assert list(clock.epochs_contained(TimeInterval(1, 13))) == []
        assert list(clock.epochs_contained(TimeInterval(0, 6))) == []

    def test_contained_subset_of_intersecting(self):
        clock = EpochClock(0.0, 3.0)
        interval = TimeInterval(2.5, 17.0)
        contained = set(clock.epochs_contained(interval))
        intersecting = set(clock.epochs_intersecting(interval))
        assert contained <= intersecting

    def test_epoch_range_dispatch(self):
        clock = EpochClock(0.0, 7.0)
        interval = TimeInterval(0, 14)
        assert list(clock.epoch_range(interval, IntervalSemantics.INTERSECTS)) == [
            0,
            1,
            2,
        ]
        assert list(clock.epoch_range(interval, IntervalSemantics.CONTAINED)) == [0, 1]


class TestVariedEpochClock:
    def test_exponential_schedule(self):
        clock = VariedEpochClock.exponential(0.0, 1.0, count=4, factor=2.0)
        # Epochs: [0,1), [1,3), [3,7), [7,15), then the open tail [15, inf).
        assert clock.bounds(0) == (0.0, 1.0)
        assert clock.bounds(1) == (1.0, 3.0)
        assert clock.bounds(3) == (7.0, 15.0)
        assert clock.bounds(4) == (15.0, math.inf)

    def test_epoch_of(self):
        clock = VariedEpochClock([0.0, 1.0, 3.0, 7.0])
        assert clock.epoch_of(0.5) == 0
        assert clock.epoch_of(1.0) == 1
        assert clock.epoch_of(2.9) == 1
        assert clock.epoch_of(100.0) == 3  # the open tail

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            VariedEpochClock([0.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            VariedEpochClock([0.0])

    def test_epochs_intersecting(self):
        clock = VariedEpochClock([0.0, 1.0, 3.0, 7.0])
        assert list(clock.epochs_intersecting(TimeInterval(0.5, 3.5))) == [0, 1, 2]

    def test_epochs_contained_excludes_open_tail(self):
        clock = VariedEpochClock([0.0, 1.0, 3.0])
        contained = list(clock.epochs_contained(TimeInterval(0.0, 100.0)))
        assert contained == [0, 1]

    def test_num_epochs(self):
        clock = VariedEpochClock([0.0, 1.0, 3.0])
        assert clock.num_epochs(0.0) == 0
        assert clock.num_epochs(0.5) == 1
        assert clock.num_epochs(2.0) == 2


@given(
    st.floats(0, 1000, allow_nan=False),
    st.floats(0.1, 50, allow_nan=False),
    st.floats(0, 2000, allow_nan=False),
)
def test_property_epoch_of_respects_bounds(t0, length, offset):
    clock = EpochClock(t0, length)
    t = t0 + offset
    index = clock.epoch_of(t)
    ts, te = clock.bounds(index)
    assert ts <= t + 1e-6
    assert t < te + 1e-6


@given(st.floats(0.5, 30, allow_nan=False), st.integers(0, 50), st.integers(0, 50))
def test_property_intersecting_covers_interval(length, a, b):
    clock = EpochClock(0.0, length)
    start, end = sorted((float(a), float(b)))
    interval = TimeInterval(start, end)
    epochs = list(clock.epochs_intersecting(interval))
    assert epochs, "every interval intersects at least one epoch"
    # The epochs' union must cover the interval.
    assert clock.bounds(epochs[0])[0] <= start + 1e-9
    assert clock.bounds(epochs[-1])[1] >= end - 1e-9
