"""TIA backends: in-memory reference semantics, paged B+-tree equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval
from repro.temporal.records import TemporalRecord, records_from_epochs
from repro.temporal.tia import (
    IntervalSemantics,
    MemoryTIA,
    PagedTIA,
    make_tia_factory,
)


@pytest.fixture(params=["memory", "paged"])
def tia(request):
    if request.param == "memory":
        return MemoryTIA()
    return PagedTIA(stats=AccessStats(), page_size=64, buffer_slots=4)


class TestCommonBehaviour:
    def test_empty(self, tia):
        assert tia.get(0) == 0
        assert len(tia) == 0
        assert tia.total() == 0
        assert tia.range_sum(0, 100) == 0

    def test_set_get(self, tia):
        tia.set(3, 7)
        assert tia.get(3) == 7
        assert tia.get(2) == 0
        assert len(tia) == 1

    def test_overwrite(self, tia):
        tia.set(3, 7)
        tia.set(3, 2)
        assert tia.get(3) == 2
        assert len(tia) == 1

    def test_set_zero_removes(self, tia):
        tia.set(3, 7)
        tia.set(3, 0)
        assert tia.get(3) == 0
        assert len(tia) == 0

    def test_negative_rejected(self, tia):
        with pytest.raises(ValueError):
            tia.set(0, -1)

    def test_add_accumulates(self, tia):
        tia.add(5, 2)
        tia.add(5, 3)
        assert tia.get(5) == 5

    def test_raise_to(self, tia):
        assert tia.raise_to(1, 4) is True
        assert tia.raise_to(1, 3) is False
        assert tia.raise_to(1, 9) is True
        assert tia.get(1) == 9
        assert tia.raise_to(2, 0) is False

    def test_range_sum(self, tia):
        for epoch, value in [(0, 1), (2, 5), (5, 2), (9, 7)]:
            tia.set(epoch, value)
        assert tia.range_sum(0, 9) == 15
        assert tia.range_sum(1, 5) == 7
        assert tia.range_sum(3, 4) == 0
        assert tia.range_sum(9, 9) == 7
        assert tia.range_sum(5, 2) == 0  # inverted range is empty

    def test_items_sorted(self, tia):
        for epoch in [9, 1, 4, 0]:
            tia.set(epoch, epoch + 1)
        assert list(tia.items()) == [(0, 1), (1, 2), (4, 5), (9, 10)]

    def test_replace_all_drops_zeros(self, tia):
        tia.set(1, 5)
        tia.replace_all({0: 3, 2: 0, 7: 4})
        assert list(tia.items()) == [(0, 3), (7, 4)]

    def test_total_and_mean_rate(self, tia):
        tia.replace_all({0: 2, 1: 4})
        assert tia.total() == 6
        assert tia.mean_rate(3) == pytest.approx(2.0)
        assert tia.mean_rate(0) == 0.0

    def test_aggregate_intersects_vs_contained(self, tia):
        clock = EpochClock(0.0, 7.0)
        tia.replace_all({0: 1, 1: 2, 2: 4})
        interval = TimeInterval(3.0, 17.0)  # spans epochs 0..2 partially
        assert tia.aggregate(clock, interval, IntervalSemantics.INTERSECTS) == 7
        assert tia.aggregate(clock, interval, IntervalSemantics.CONTAINED) == 2

    def test_records(self, tia):
        clock = EpochClock(0.0, 7.0)
        tia.replace_all({0: 3, 2: 1})
        assert tia.records(clock) == [
            TemporalRecord(0.0, 7.0, 3),
            TemporalRecord(14.0, 21.0, 1),
        ]


class TestPagedSpecifics:
    def test_splits_keep_order(self):
        tia = PagedTIA(page_size=64, buffer_slots=4)
        for epoch in range(200):
            tia.set(epoch, epoch % 7 + 1)
        assert len(tia) == 200
        assert list(tia.items()) == [(e, e % 7 + 1) for e in range(200)]
        assert tia.page_count() > 1

    def test_reverse_insert_order(self):
        tia = PagedTIA(page_size=64, buffer_slots=4)
        for epoch in reversed(range(120)):
            tia.set(epoch, 1)
        assert list(tia.items()) == [(e, 1) for e in range(120)]
        assert tia.range_sum(10, 19) == 10

    def test_page_access_counting(self):
        stats = AccessStats()
        tia = PagedTIA(stats=stats, page_size=64, buffer_slots=0)
        for epoch in range(100):
            tia.set(epoch, 1)
        before = stats.tia_pages
        tia.range_sum(0, 99)
        assert stats.tia_pages > before  # unbuffered scan reads pages

    def test_buffer_reduces_misses(self):
        # The working set (about 7 pages for 20 epochs at 64-byte pages)
        # must fit in the buffer, otherwise a repeated sequential scan is
        # the classic LRU worst case and every access misses.
        def run(slots):
            stats = AccessStats()
            tia = PagedTIA(stats=stats, page_size=64, buffer_slots=slots)
            tia.replace_all({e: 1 for e in range(20)})
            stats.reset()
            for _ in range(5):
                tia.range_sum(0, 19)
            return stats.tia_pages

        assert run(10) < run(0)

    def test_sequential_scan_larger_than_buffer_thrashes(self):
        # LRU gives zero hits when the scanned page chain exceeds the
        # buffer — the realistic behaviour the paper's 10-slot TIAs face
        # on long intervals.
        stats = AccessStats()
        tia = PagedTIA(stats=stats, page_size=64, buffer_slots=10)
        tia.replace_all({e: 1 for e in range(100)})
        tia.buffer.clear()
        stats.reset()
        tia.range_sum(0, 99)
        first_pass = stats.tia_pages
        tia.range_sum(0, 99)
        assert stats.tia_pages == 2 * first_pass

    def test_bulk_load_equals_incremental(self):
        incremental = PagedTIA(page_size=64, buffer_slots=4)
        bulk = PagedTIA(page_size=64, buffer_slots=4)
        data = {e * 3: e + 1 for e in range(150)}
        for epoch, value in data.items():
            incremental.set(epoch, value)
        bulk.replace_all(data)
        assert list(incremental.items()) == list(bulk.items())
        assert incremental.range_sum(30, 300) == bulk.range_sum(30, 300)


class TestFactory:
    def test_memory(self):
        assert isinstance(make_tia_factory("memory")(), MemoryTIA)

    def test_paged_shares_stats(self):
        stats = AccessStats()
        factory = make_tia_factory("paged", stats=stats, buffer_slots=0)
        tia = factory()
        tia.set(0, 1)
        tia.get(0)
        assert stats.tia_pages > 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_tia_factory("nope")


def test_records_from_epochs_helper():
    clock = EpochClock(0.0, 2.0)
    records = records_from_epochs({1: 4, 0: 0, 3: 2}, clock)
    assert records == [TemporalRecord(2.0, 4.0, 4), TemporalRecord(6.0, 8.0, 2)]


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(st.integers(0, 300), st.integers(1, 50), max_size=60),
    st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 300)), max_size=10
    ),
)
def test_property_paged_equals_memory(data, ranges):
    memory = MemoryTIA()
    paged = PagedTIA(page_size=64, buffer_slots=3)
    for epoch, value in data.items():
        memory.set(epoch, value)
        paged.set(epoch, value)
    assert list(memory.items()) == list(paged.items())
    for a, b in ranges:
        lo, hi = min(a, b), max(a, b)
        assert memory.range_sum(lo, hi) == paged.range_sum(lo, hi)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "add", "raise"]),
            st.integers(0, 60),
            st.integers(0, 9),
        ),
        max_size=80,
    )
)
def test_property_paged_equals_memory_under_mutation(operations):
    memory = MemoryTIA()
    paged = PagedTIA(page_size=64, buffer_slots=2)
    for op, epoch, value in operations:
        if op == "set":
            memory.set(epoch, value)
            paged.set(epoch, value)
        elif op == "add":
            memory.add(epoch, value)
            paged.add(epoch, value)
        else:
            memory.raise_to(epoch, value)
            paged.raise_to(epoch, value)
    assert list(memory.items()) == list(paged.items())
    assert memory.total() == paged.total()
