"""Multi-version B-tree TIA: current-version semantics and time travel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.stats import AccessStats
from repro.temporal.epochs import EpochClock, TimeInterval
from repro.temporal.mvbt import MVBTTIA
from repro.temporal.tia import MemoryTIA, make_tia_factory


def make_mvbt(page_size=128, buffer_slots=4, stats=None):
    return MVBTTIA(stats=stats, page_size=page_size, buffer_slots=buffer_slots)


class TestCurrentVersion:
    """The BaseTIA contract at the newest version."""

    def test_empty(self):
        tia = make_mvbt()
        assert tia.get(0) == 0
        assert tia.range_sum(0, 100) == 0
        assert len(tia) == 0

    def test_set_get(self):
        tia = make_mvbt()
        tia.set(3, 7)
        assert tia.get(3) == 7
        assert tia.get(4) == 0

    def test_overwrite(self):
        tia = make_mvbt()
        tia.set(3, 7)
        tia.set(3, 9)
        assert tia.get(3) == 9
        assert len(tia) == 1

    def test_delete(self):
        tia = make_mvbt()
        tia.set(3, 7)
        tia.set(3, 0)
        assert tia.get(3) == 0
        assert len(tia) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_mvbt().set(0, -1)

    def test_add_and_raise(self):
        tia = make_mvbt()
        tia.add(5, 2)
        tia.add(5, 3)
        assert tia.get(5) == 5
        assert tia.raise_to(5, 4) is False
        assert tia.raise_to(5, 9) is True
        assert tia.get(5) == 9

    def test_many_inserts_split_pages(self):
        tia = make_mvbt(page_size=96)
        for epoch in range(300):
            tia.set(epoch, epoch % 5 + 1)
        assert len(tia) == 300
        assert list(tia.items()) == [(e, e % 5 + 1) for e in range(300)]
        assert tia.page_count() > 3

    def test_reverse_and_interleaved_insert_order(self):
        tia = make_mvbt(page_size=96)
        order = list(range(0, 200, 2)) + list(reversed(range(1, 200, 2)))
        for epoch in order:
            tia.set(epoch, 1)
        assert list(tia.items()) == [(e, 1) for e in range(200)]
        assert tia.range_sum(50, 149) == 100

    def test_range_sum_below_leftmost_router(self):
        # Keys inserted descending force the leftmost child to hold keys
        # below its router; the range scan must still find them.
        tia = make_mvbt(page_size=96)
        for epoch in reversed(range(100)):
            tia.set(epoch, 1)
        assert tia.range_sum(0, 3) == 4

    def test_replace_all(self):
        tia = make_mvbt()
        tia.set(1, 5)
        tia.replace_all({0: 3, 7: 4, 2: 0})
        assert list(tia.items()) == [(0, 3), (7, 4)]

    def test_aggregate_with_clock(self):
        clock = EpochClock(0.0, 7.0)
        tia = make_mvbt()
        tia.replace_all({0: 1, 1: 2, 2: 4})
        assert tia.aggregate(clock, TimeInterval(0, 21)) == 7

    def test_page_access_counting(self):
        stats = AccessStats()
        tia = make_mvbt(stats=stats, buffer_slots=0)
        for epoch in range(50):
            tia.set(epoch, 1)
        before = stats.tia_pages
        tia.range_sum(0, 49)
        assert stats.tia_pages > before

    def test_factory(self):
        stats = AccessStats()
        tia = make_tia_factory("mvbt", stats=stats, buffer_slots=0)()
        assert isinstance(tia, MVBTTIA)
        tia.set(0, 1)
        assert stats.tia_pages > 0


class TestTimeTravel:
    """Partial persistence: every past version stays queryable."""

    def test_get_at_past_versions(self):
        tia = make_mvbt()
        tia.set(1, 10)       # version 1
        v1 = tia.version
        tia.set(1, 20)       # version 2
        tia.set(2, 5)        # version 3
        assert tia.get_at(1, v1) == 10
        assert tia.get(1) == 20
        assert tia.get_at(2, v1) == 0
        assert tia.get(2) == 5

    def test_deleted_key_still_visible_in_the_past(self):
        tia = make_mvbt()
        tia.set(4, 9)
        v = tia.version
        tia.set(4, 0)
        assert tia.get(4) == 0
        assert tia.get_at(4, v) == 9

    def test_range_sum_at_reconstructs_history(self):
        tia = make_mvbt(page_size=96)
        checkpoints = {}
        reference = {}
        for epoch in range(150):
            tia.set(epoch, epoch + 1)
            reference[epoch] = epoch + 1
            if epoch % 37 == 0:
                checkpoints[tia.version] = dict(reference)
        for version, snapshot in checkpoints.items():
            expected = sum(v for k, v in snapshot.items() if 10 <= k <= 120)
            assert tia.range_sum_at(10, 120, version) == expected

    def test_items_at_past_version_after_splits(self):
        tia = make_mvbt(page_size=96)
        for epoch in range(80):
            tia.set(epoch, 1)
        v = tia.version
        for epoch in range(80, 160):
            tia.set(epoch, 2)
        assert list(tia.items_at(v)) == [(e, 1) for e in range(80)]
        assert list(tia.items()) == [(e, 1) for e in range(80)] + [
            (e, 2) for e in range(80, 160)
        ]

    def test_range_max_at_past_version(self):
        tia = make_mvbt(page_size=96)
        tia.set(3, 5)
        tia.set(7, 9)
        v = tia.version
        tia.set(7, 2)   # later downgrade
        tia.set(1, 100)
        assert tia.range_max(0, 10) == 100
        assert tia.range_max_at(0, 10, v) == 9
        assert tia.range_max_at(0, 5, v) == 5

    def test_updates_do_not_rewrite_history(self):
        tia = make_mvbt(page_size=96)
        for epoch in range(60):
            tia.set(epoch, 1)
        v = tia.version
        for epoch in range(60):
            tia.set(epoch, 100)
        assert tia.range_sum_at(0, 59, v) == 60
        assert tia.range_sum(0, 59) == 6000


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 80), st.integers(0, 9)),
        max_size=120,
    )
)
def test_property_mvbt_matches_memory_tia(operations):
    memory = MemoryTIA()
    mvbt = make_mvbt(page_size=96)
    for epoch, value in operations:
        memory.set(epoch, value)
        mvbt.set(epoch, value)
    assert list(memory.items()) == list(mvbt.items())
    assert memory.range_sum(0, 80) == mvbt.range_sum(0, 80)
    assert memory.range_sum(20, 40) == mvbt.range_sum(20, 40)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 9)),
        min_size=1,
        max_size=80,
    ),
    st.data(),
)
def test_property_time_travel_matches_replayed_history(operations, data):
    """Any past version equals replaying the operation prefix."""
    mvbt = make_mvbt(page_size=96)
    versions = []
    for epoch, value in operations:
        mvbt.set(epoch, value)
        versions.append(mvbt.version)
    index = data.draw(st.integers(0, len(operations) - 1))
    replay = MemoryTIA()
    for epoch, value in operations[: index + 1]:
        replay.set(epoch, value)
    assert list(mvbt.items_at(versions[index])) == list(replay.items())
    assert mvbt.range_sum_at(0, 50, versions[index]) == replay.range_sum(0, 50)
