"""The paper's running example (Figure 1 / Table 1, Sections 3-4).

Twelve POIs a..l with the aggregate distribution of Table 1, a query at
``q`` with ``alpha0 = 0.3``, ``Iq = [t0, tc]`` and ``k = 1``.  The paper
normalises by the maximum pairwise distance 15.6 and maximum aggregate
12, computes ``f(e) = 0.626`` and ``f(f) = 0.058``, and returns POI *f*.
"""

import math

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.query import KNNTAQuery, Normalizer
from repro.core.scan import full_ranking, sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import MemoryTIA

# Coordinates chosen so that d(e, q) = sqrt(5) ~ 2.24 and d(f, q) = 3,
# with the cluster layout of Figure 2(a).
POSITIONS = {
    "a": (4, 3), "b": (3, 4), "e": (5, 4),
    "c": (10, 7), "g": (9, 8), "f": (9, 6),
    "d": (2, 9), "h": (3, 10),
    "i": (12, 2), "k": (11, 1),
    "j": (13, 12), "l": (12, 11),
}
QUERY_POINT = (6.0, 6.0)

# Table 1: check-ins per POI in epochs [t0,t1), [t1,t2), [t2,tc].
TABLE_1 = {
    "a": (1, 1, 0), "b": (1, 0, 1), "c": (2, 2, 2), "d": (2, 0, 0),
    "e": (1, 1, 0), "f": (3, 5, 4), "g": (2, 3, 1), "h": (1, 1, 0),
    "i": (2, 2, 2), "j": (2, 0, 0), "k": (1, 0, 1), "l": (1, 0, 1),
}

PAPER_D_MAX = 15.6
PAPER_G_MAX = 12


def build_example_tree(strategy="integral3d", **kwargs):
    tree = TARTree(
        world=Rect((0.0, 0.0), (14.0, 14.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=3.0,
        strategy=strategy,
        tia_backend="memory",
        **kwargs,
    )
    for name, (x, y) in POSITIONS.items():
        epochs = {i: c for i, c in enumerate(TABLE_1[name]) if c > 0}
        tree.insert_poi(POI(name, x, y), epochs)
    return tree


@pytest.fixture(scope="module")
def example_tree():
    tree = build_example_tree()
    tree.check_invariants()
    return tree


@pytest.fixture(scope="module")
def paper_normalizer():
    return Normalizer(PAPER_D_MAX, PAPER_G_MAX)


@pytest.fixture(scope="module")
def example_query():
    return KNNTAQuery(point=QUERY_POINT, interval=TimeInterval(0.0, 3.0), k=1, alpha0=0.3)


def test_table1_total_aggregates(example_tree):
    interval = TimeInterval(0.0, 3.0)
    for name, counts in TABLE_1.items():
        tia = example_tree.poi_tia(name)
        assert tia.aggregate(example_tree.clock, interval) == sum(counts)


def test_max_aggregate_is_12(example_tree):
    # f has 3 + 5 + 4 = 12 check-ins, the maximum used for normalisation.
    assert example_tree.normalizer(TimeInterval(0.0, 3.0), exact=True).g_max == 12


def test_paper_score_of_e(example_tree, example_query, paper_normalizer):
    ranking = full_ranking(example_tree, example_query, paper_normalizer)
    scores = {r.poi_id: r.score for r in ranking}
    expected = 0.3 * math.sqrt(5) / 15.6 + 0.7 * (1 - 2 / 12)
    assert scores["e"] == pytest.approx(expected)
    assert scores["e"] == pytest.approx(0.626, abs=5e-4)


def test_paper_score_of_f(example_tree, example_query, paper_normalizer):
    ranking = full_ranking(example_tree, example_query, paper_normalizer)
    scores = {r.poi_id: r.score for r in ranking}
    assert scores["f"] == pytest.approx(0.3 * 3 / 15.6 + 0.7 * 0.0)
    assert scores["f"] == pytest.approx(0.058, abs=5e-4)


def test_top1_is_f(example_tree, example_query, paper_normalizer):
    from repro.core.knnta import knnta_search

    results = knnta_search(example_tree, example_query, normalizer=paper_normalizer)
    assert [r.poi_id for r in results] == ["f"]


def test_bfs_matches_scan_on_example(example_tree, paper_normalizer):
    from repro.core.knnta import knnta_search

    query = KNNTAQuery(QUERY_POINT, TimeInterval(0.0, 3.0), k=12, alpha0=0.3)
    bfs = knnta_search(example_tree, query, normalizer=paper_normalizer)
    scan = sequential_scan(example_tree, query, normalizer=paper_normalizer)
    assert [r.poi_id for r in bfs] == [r.poi_id for r in scan]
    for lhs, rhs in zip(bfs, scan):
        assert lhs.score == pytest.approx(rhs.score)


@pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
def test_every_strategy_answers_the_example(strategy, paper_normalizer):
    from repro.core.knnta import knnta_search

    tree = build_example_tree(strategy)
    tree.check_invariants()
    query = KNNTAQuery(QUERY_POINT, TimeInterval(0.0, 3.0), k=3, alpha0=0.3)
    results = knnta_search(tree, query, normalizer=paper_normalizer)
    assert results[0].poi_id == "f"
    scan = sequential_scan(tree, query, normalizer=paper_normalizer)
    assert [r.poi_id for r in results] == [r.poi_id for r in scan]


def test_section41_internal_tia_example():
    """Section 4.1: the internal entry's TIA stores the per-epoch maxima."""
    first = MemoryTIA()
    first.replace_all({0: 2, 1: 2, 2: 2})
    second = MemoryTIA()
    second.replace_all({0: 2, 1: 3, 2: 1})

    class _Entry:
        def __init__(self, tia):
            self.tia = tia

    maxima = TARTree._epoch_maxima([_Entry(first), _Entry(second)])
    assert maxima == {0: 2, 1: 3, 2: 2}


def test_tia_distance_example_from_section_51():
    """Section 5.1: Manhattan distances between the TIAs of c, g and l."""
    from repro.core.grouping import tia_manhattan

    def tia_of(name):
        tia = MemoryTIA()
        tia.replace_all({i: c for i, c in enumerate(TABLE_1[name]) if c > 0})
        return tia

    assert tia_manhattan(tia_of("c"), tia_of("g")) == 2
    assert tia_manhattan(tia_of("c"), tia_of("l")) == 4


def test_search_region_dimensions_from_section_62():
    """Section 6.2: alpha0=0.3, f(pk)=0.058 gives r0=0.192 and hl=0.082."""
    fpk = 0.3 * 3 / 15.6  # the exact f(f) from the example
    r0 = fpk / 0.3
    hl = fpk / 0.7
    assert r0 == pytest.approx(0.192, abs=1e-3)
    assert hl == pytest.approx(0.082, abs=1e-3)
