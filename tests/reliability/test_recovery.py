"""Graceful degradation (robust_knnta) and crash recovery (WAL + replay)."""

import random

import pytest

from repro import POI, TARTree
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.datasets.streaming import pending_counts
from repro.reliability.faults import (
    FaultInjector,
    TransientIOError,
    constant,
    first_n,
    inject_tree_faults,
)
from repro.reliability.recovery import (
    CheckpointedIngest,
    DigestLog,
    RetryPolicy,
    read_digest_log,
    recover,
    robust_knnta,
)
from repro.spatial.geometry import Rect
from repro.storage.serialize import CorruptSnapshotError, load_tree, save_tree
from repro.temporal.epochs import EpochClock, TimeInterval


def build_tree(pois=70, seed=5):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (20.0, 20.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        tia_backend="memory",
    )
    for i in range(pois):
        history = {e: rng.randrange(1, 8) for e in range(10) if rng.random() < 0.6}
        tree.insert_poi(POI(i, rng.random() * 20, rng.random() * 20), history)
    return tree


def seeded_workload(tree, n=8, seed=11):
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        start = rng.uniform(0.0, 5.0)
        queries.append(
            KNNTAQuery(
                (rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)),
                TimeInterval(start, start + rng.uniform(2.0, 5.0)),
                k=rng.randrange(3, 9),
                alpha0=rng.choice([0.2, 0.3, 0.5]),
            )
        )
    return queries


def ranking(results):
    return [(r.poi_id, round(r.score, 12)) for r in results]


class TestRetryPolicy:
    def make_flaky(self, failures):
        calls = {"n": 0}

        def operation():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise TransientIOError("flaky")
            return "ok"

        return operation, calls

    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_retries=5, sleep=None)
        operation, calls = self.make_flaky(3)
        assert policy.run(operation) == "ok"
        assert calls["n"] == 4
        assert policy.retries_used == 3

    def test_budget_exhaustion_reraises(self):
        policy = RetryPolicy(max_retries=2, sleep=None)
        operation, calls = self.make_flaky(10)
        with pytest.raises(TransientIOError):
            policy.run(operation)
        assert calls["n"] == 3

    def test_zero_retries_raises_immediately(self):
        policy = RetryPolicy(max_retries=0, sleep=None)
        operation, calls = self.make_flaky(1)
        with pytest.raises(TransientIOError):
            policy.run(operation)
        assert calls["n"] == 1

    def test_backoff_is_exponential_and_capped(self):
        delays = []
        policy = RetryPolicy(
            max_retries=5,
            backoff=0.01,
            factor=2.0,
            max_backoff=0.03,
            sleep=delays.append,
        )
        operation, _ = self.make_flaky(4)
        policy.run(operation)
        assert delays == [0.01, 0.02, 0.03, 0.03]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_retries_used_accumulates_across_calls(self):
        policy = RetryPolicy(max_retries=5, sleep=None)
        for _ in range(2):
            operation, _ = self.make_flaky(2)
            policy.run(operation)
        assert policy.retries_used == 4


class TestRobustKnnta:
    def test_acceptance_identical_under_ten_percent_faults(self):
        # The ISSUE's acceptance bar: at a 10% transient-failure rate the
        # robust query must return exactly the fault-free answers.
        tree = build_tree()
        workload = seeded_workload(tree)
        baseline = [ranking(knnta_search(tree, q)) for q in workload]

        injector = FaultInjector(seed=99)
        injector.configure("tia", schedule=constant(0.1))
        inject_tree_faults(tree, injector)
        for query, expected in zip(workload, baseline):
            answer = robust_knnta(
                tree, query, retry=RetryPolicy(sleep=None)
            )
            assert not answer.used_fallback
            assert ranking(answer) == expected
        assert injector.injected("tia") > 0

    def test_exhausted_retries_fall_back_to_scan(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        expected = ranking(knnta_search(tree, query))

        injector = FaultInjector(seed=0)
        injector.configure("tia", schedule=first_n(3))
        inject_tree_faults(tree, injector)
        answer = robust_knnta(
            tree, query, retry=RetryPolicy(max_retries=2, sleep=None)
        )
        assert answer.used_fallback
        assert answer.reason == "transient-faults"
        assert answer.retries == 2
        assert ranking(answer) == expected

    def test_fallback_false_propagates(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        injector = FaultInjector(seed=0)
        injector.configure("tia", schedule=first_n(50))
        inject_tree_faults(tree, injector)
        with pytest.raises(TransientIOError):
            robust_knnta(
                tree,
                query,
                retry=RetryPolicy(max_retries=1, sleep=None),
                fallback=False,
            )

    def test_corrupt_internal_tias_answered_by_scan(self):
        # Damage every internal TIA: the BFS bound is now a lie, but the
        # scan baseline reads only leaf TIAs and stays exact.
        clean = build_tree()
        query = seeded_workload(clean, n=1)[0]
        expected = ranking(
            sequential_scan(
                clean,
                query,
                normalizer=clean.normalizer(
                    query.interval, query.semantics, exact=True
                ),
            )
        )

        damaged = build_tree()
        for entry in damaged.root.entries:
            entry.tia.replace_all({0: 1})
        answer = robust_knnta(damaged, query, validate=True)
        assert answer.used_fallback
        assert answer.reason == "corruption"
        assert not answer.validation.ok
        assert ranking(answer) == expected

    def test_clean_tree_with_validate_uses_bfs(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        answer = robust_knnta(tree, query, validate=True)
        assert not answer.used_fallback
        assert answer.validation.ok
        assert ranking(answer) == ranking(knnta_search(tree, query))

    def test_tree_method_wrapper(self):
        tree = build_tree()
        direct = tree.knnta((5.0, 5.0), TimeInterval(0.0, 6.0), k=4)
        robust = tree.robust_knnta((5.0, 5.0), TimeInterval(0.0, 6.0), k=4)
        assert ranking(robust) == ranking(direct)
        assert len(robust) == 4


class TestDigestLog:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            assert log.append(3, [["a", 2, 2]]) == 0
            assert log.append(4, [["a", 1, 3], ["b", 5, 5]]) == 1
        records, dropped = read_digest_log(path)
        assert dropped == 0
        assert records == [[0, 3, [["a", 2, 2]]], [1, 4, [["a", 1, 3], ["b", 5, 5]]]]

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
        with DigestLog(path) as log:
            assert log.append(1, [["a", 1, 2]]) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_digest_log(str(tmp_path / "nope.digestlog")) == ([], 0)

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
            log.append(1, [["b", 2, 2]])
        with open(path, "rb+") as handle:
            handle.seek(-5, 2)
            handle.truncate()  # tear the final record mid-line
        records, dropped = read_digest_log(path)
        assert [record[0] for record in records] == [0]
        assert dropped == 1

    def test_reopen_after_torn_tail_repairs_log(self, tmp_path):
        # The crash signature: file ends mid-record without a newline.
        # Reopening must truncate the torn fragment so the next append
        # starts on a fresh line — otherwise the new (acked, fsync'd)
        # record is glued onto the fragment and lost, and every later
        # read raises for mid-log corruption.
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
            log.append(1, [["b", 2, 2]])
        with open(path, "rb+") as handle:
            handle.seek(-5, 2)
            handle.truncate()  # tear the final record mid-line
        with DigestLog(path) as log:
            assert log.append(1, [["b", 2, 2]]) == 1  # seq resumes after intact prefix
            log.append(2, [["c", 3, 3]])
        records, dropped = read_digest_log(path)
        assert dropped == 0
        assert [(record[0], record[1]) for record in records] == [(0, 0), (1, 1), (2, 2)]

    def test_intact_final_line_without_newline_is_torn(self, tmp_path):
        # An acked record always ends in "\n" (append writes the full
        # frame before fsync), so a newline-less final line is a torn
        # write even when its CRC happens to verify.
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
            log.append(1, [["b", 2, 2]])
        with open(path, "rb+") as handle:
            handle.seek(-1, 2)
            handle.truncate()  # strip only the trailing newline
        records, dropped = read_digest_log(path)
        assert [record[0] for record in records] == [0]
        assert dropped == 1
        with DigestLog(path) as log:
            assert log.append(1, [["b", 2, 2]]) == 1
        records, dropped = read_digest_log(path)
        assert dropped == 0
        assert [record[0] for record in records] == [0, 1]

    def test_corruption_before_intact_records_raises(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
            log.append(1, [["b", 2, 2]])
        with open(path, "r") as handle:
            lines = handle.readlines()
        lines[0] = "deadbeef" + lines[0][8:]  # break the first CRC
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptSnapshotError) as excinfo:
            read_digest_log(path)
        assert excinfo.value.section == "digest-log"

    def test_non_monotonic_sequence_raises(self, tmp_path):
        import json
        import zlib

        path = str(tmp_path / "x.digestlog")
        with open(path, "w") as handle:
            for seq in (5, 3):
                body = json.dumps([seq, 0, [["a", 1, 1]]], separators=(",", ":"))
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                handle.write("%08x %s\n" % (crc, body))
        with pytest.raises(CorruptSnapshotError):
            read_digest_log(path)

    def test_truncate_resets(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with DigestLog(path) as log:
            log.append(0, [["a", 1, 1]])
            log.truncate()
            assert log.append(7, [["b", 1, 1]]) == 0
        records, _ = read_digest_log(path)
        assert records == [[0, 7, [["b", 1, 1]]]]


def make_base_snapshot(dataset, directory):
    """Persist a tree over the first half of ``dataset`` into ``directory``."""
    base = TARTree.build(dataset.snapshot(0.5), tia_backend="memory")
    with CheckpointedIngest(base, str(directory)):
        pass  # construction writes <name>.json
    return str(directory)


def sorted_batches(tree, dataset):
    pending = pending_counts(tree, dataset)
    return [(epoch, dict(pending[epoch])) for epoch in sorted(pending)]


class TestCheckpointedIngestRecovery:
    def reference_run(self, directory, batches):
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches:
                ingest.digest(epoch, counts)
        return tree

    def test_recover_after_abandoned_ingest(self, small_dataset, tmp_path):
        # Crash after N full batches (no checkpoint): replay restores all.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        assert len(batches) >= 3, "dataset too small for the scenario"

        reference = self.reference_run(dir_a, batches)
        self.reference_run(dir_b, batches)  # then "crash" (handle abandoned)

        report = recover(dir_b, dataset=small_dataset)
        assert report.replayed_epochs == len(batches)
        assert report.dropped_tail_records == 0
        assert report.caught_up_checkins == 0  # the WAL alone was enough
        assert_same_tree(reference, report.tree, tmp_path)

    def test_recover_after_crash_mid_digest_epoch(self, small_dataset, tmp_path):
        # The acceptance scenario: kill the process mid-``digest_epoch``
        # (after the WAL append, during TIA application) and recover to a
        # state byte-identical with an uncrashed run.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        reference = self.reference_run(dir_a, batches)

        tree_b = load_tree(dir_b + "/tree.json")
        with CheckpointedIngest(tree_b, dir_b) as ingest:
            for epoch, counts in batches[:-1]:
                ingest.digest(epoch, counts)
            last_epoch, last_counts = batches[-1]
            # Arm write faults that fire only once the WAL record is on
            # disk and ``digest_epoch`` is mutating TIAs.
            threshold = len(last_counts) + 2
            injector = FaultInjector(seed=0)
            injector.configure(
                "tia", schedule=lambda attempt: 1.0 if attempt >= threshold else 0.0
            )
            inject_tree_faults(tree_b, injector, fault_writes=True)
            with pytest.raises(TransientIOError):
                ingest.digest(last_epoch, last_counts)

        records, _ = read_digest_log(dir_b + "/tree.digestlog")
        assert records[-1][1] == last_epoch  # the batch was logged pre-crash

        report = recover(dir_b, dataset=small_dataset)
        assert report.replayed_epochs >= 1
        assert report.caught_up_checkins == 0
        assert_same_tree(reference, report.tree, tmp_path)
        query = seeded_workload(reference, n=1, seed=23)[0]
        assert ranking(knnta_search(report.tree, query)) == ranking(
            knnta_search(reference, query)
        )

    def test_torn_log_tail_recovered_from_dataset(self, small_dataset, tmp_path):
        # A torn final WAL record loses that batch; reconciling against
        # the source data set still reaches exact consistency.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        reference = self.reference_run(dir_a, batches)
        self.reference_run(dir_b, batches)

        with open(dir_b + "/tree.digestlog", "rb+") as handle:
            handle.seek(-4, 2)
            handle.truncate()
        report = recover(dir_b, dataset=small_dataset)
        assert report.dropped_tail_records == 1
        assert report.replayed_epochs == len(batches) - 1
        assert report.caught_up_checkins > 0
        assert_same_tree(reference, report.tree, tmp_path)

    def test_ingest_resumes_cleanly_after_torn_tail(self, small_dataset, tmp_path):
        # Reviewer reproduction: crash leaves a torn log tail, recovery
        # runs, then a new CheckpointedIngest reuses the directory.  The
        # repaired log must accept fresh batches without losing them or
        # poisoning later reads/recoveries.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        assert len(batches) >= 3, "dataset too small for the scenario"
        reference = self.reference_run(dir_a, batches)

        self.reference_run(dir_b, batches[:-1])
        with open(dir_b + "/tree.digestlog", "rb+") as handle:
            handle.seek(-4, 2)
            handle.truncate()  # crash tears the last record (batches[-2])
        report = recover(dir_b)  # no dataset: torn batch stays pending
        assert report.dropped_tail_records == 1
        assert report.replayed_epochs == len(batches) - 2

        with CheckpointedIngest(report.tree, dir_b) as ingest:
            for epoch, counts in batches[-2:]:
                assert ingest.digest(epoch, counts) is not None
        records, dropped = read_digest_log(dir_b + "/tree.digestlog")
        assert dropped == 0
        assert [record[1] for record in records[-2:]] == [
            epoch for epoch, _counts in batches[-2:]
        ]
        final = recover(dir_b)
        assert_same_tree(reference, final.tree, tmp_path)

    def test_max_tree_recovery_reports_skipped_reconciliation(
        self, small_dataset, tmp_path
    ):
        # catch_up() cannot reconcile peak (MAX) histories; recover()
        # must surface the skip instead of pretending "0 caught up".
        rng = random.Random(3)
        tree = TARTree(
            world=Rect((0.0, 0.0), (20.0, 20.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=10.0,
            tia_backend="memory",
            aggregate_kind="max",
        )
        for i in range(20):
            history = {e: rng.randrange(1, 8) for e in range(5)}
            tree.insert_poi(POI(i, rng.random() * 20, rng.random() * 20), history)
        directory = str(tmp_path / "m")
        with CheckpointedIngest(tree, directory) as ingest:
            ingest.digest(6, {0: 9, 1: 4})
        report = recover(directory, dataset=small_dataset)
        assert report.caught_up_checkins is None
        assert "reconciliation skipped" in report.summary()
        assert report.tree.poi_tia(0).get(6) == 9
        no_dataset = recover(directory)
        assert no_dataset.caught_up_checkins == 0  # none requested, none skipped

    def test_checkpoint_truncates_log_and_survives_restart(
        self, small_dataset, tmp_path
    ):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        batches = sorted_batches(load_tree(directory + "/tree.json"), small_dataset)
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches[:2]:
                ingest.digest(epoch, counts)
            ingest.checkpoint()
            assert read_digest_log(ingest.log_path) == ([], 0)
            for epoch, counts in batches[2:]:
                ingest.digest(epoch, counts)
        report = recover(directory, dataset=small_dataset)
        assert report.replayed_epochs == len(batches) - 2
        assert_same_tree(tree, report.tree, tmp_path)

    def test_crash_between_snapshot_and_truncate_is_harmless(
        self, small_dataset, tmp_path
    ):
        # checkpoint() = snapshot, then truncate.  Crash in between
        # leaves a log fully contained in the snapshot; replay must
        # no-op instead of double-applying.
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        batches = sorted_batches(load_tree(directory + "/tree.json"), small_dataset)
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches:
                ingest.digest(epoch, counts)
            ingest._write_snapshot()  # crash before log.truncate()
        report = recover(directory, dataset=small_dataset)
        assert report.replayed_epochs == 0  # every record replayed as a no-op
        assert report.caught_up_checkins == 0
        assert_same_tree(tree, report.tree, tmp_path)

    def test_unknown_poi_records_are_skipped(self, small_dataset, tmp_path):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            ingest.log.append(0, [["no-such-poi", 1, 1]])
        report = recover(directory)
        assert report.skipped_pois == 1
        assert "1 unknown POI" in report.summary()

    def test_empty_batches_are_not_logged(self, small_dataset, tmp_path):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            assert ingest.digest(0, {}) is None
            poi_id = next(iter(tree.poi_ids()))
            assert ingest.digest(0, {poi_id: 0}) is None
        assert read_digest_log(directory + "/tree.digestlog") == ([], 0)


def assert_same_tree(expected, actual, tmp_path):
    """Byte-compare the canonical checksummed serialisations."""
    path_a = str(tmp_path / "expected.cmp.json")
    path_b = str(tmp_path / "actual.cmp.json")
    save_tree(expected, path_a)
    save_tree(actual, path_b)
    with open(path_a, "rb") as a, open(path_b, "rb") as b:
        assert a.read() == b.read()
