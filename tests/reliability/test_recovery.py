"""Graceful degradation (robust_knnta) and crash recovery (WAL + replay)."""

import random

import pytest

from repro import POI, TARTree
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.datasets.streaming import pending_counts
from repro.reliability.faults import (
    FaultInjector,
    TransientIOError,
    constant,
    first_n,
    inject_tree_faults,
)
from repro.reliability.recovery import (
    CheckpointedIngest,
    DigestLog,
    RetryPolicy,
    read_digest_log,
    recover,
    robust_knnta,
)
from repro.reliability.wal import (
    RECORD_CHECKPOINT,
    RECORD_DIGEST,
    MutationWAL,
    WalRecord,
    read_wal,
)
from repro.spatial.geometry import Rect
from repro.storage.serialize import CorruptSnapshotError, load_tree, save_tree
from repro.temporal.epochs import EpochClock, TimeInterval


def build_tree(pois=70, seed=5):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (20.0, 20.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        tia_backend="memory",
    )
    for i in range(pois):
        history = {e: rng.randrange(1, 8) for e in range(10) if rng.random() < 0.6}
        tree.insert_poi(POI(i, rng.random() * 20, rng.random() * 20), history)
    return tree


def seeded_workload(tree, n=8, seed=11):
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        start = rng.uniform(0.0, 5.0)
        queries.append(
            KNNTAQuery(
                (rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)),
                TimeInterval(start, start + rng.uniform(2.0, 5.0)),
                k=rng.randrange(3, 9),
                alpha0=rng.choice([0.2, 0.3, 0.5]),
            )
        )
    return queries


def ranking(results):
    return [(r.poi_id, round(r.score, 12)) for r in results]


class TestRetryPolicy:
    def make_flaky(self, failures):
        calls = {"n": 0}

        def operation():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise TransientIOError("flaky")
            return "ok"

        return operation, calls

    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_retries=5, sleep=None)
        operation, calls = self.make_flaky(3)
        assert policy.run(operation) == "ok"
        assert calls["n"] == 4
        assert policy.retries_used == 3

    def test_budget_exhaustion_reraises(self):
        policy = RetryPolicy(max_retries=2, sleep=None)
        operation, calls = self.make_flaky(10)
        with pytest.raises(TransientIOError):
            policy.run(operation)
        assert calls["n"] == 3

    def test_zero_retries_raises_immediately(self):
        policy = RetryPolicy(max_retries=0, sleep=None)
        operation, calls = self.make_flaky(1)
        with pytest.raises(TransientIOError):
            policy.run(operation)
        assert calls["n"] == 1

    def test_backoff_is_exponential_and_capped(self):
        delays = []
        policy = RetryPolicy(
            max_retries=5,
            backoff=0.01,
            factor=2.0,
            max_backoff=0.03,
            sleep=delays.append,
        )
        operation, _ = self.make_flaky(4)
        policy.run(operation)
        assert delays == [0.01, 0.02, 0.03, 0.03]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_retries_used_accumulates_across_calls(self):
        policy = RetryPolicy(max_retries=5, sleep=None)
        for _ in range(2):
            operation, _ = self.make_flaky(2)
            policy.run(operation)
        assert policy.retries_used == 4


class TestRobustKnnta:
    def test_acceptance_identical_under_ten_percent_faults(self):
        # The ISSUE's acceptance bar: at a 10% transient-failure rate the
        # robust query must return exactly the fault-free answers.
        tree = build_tree()
        workload = seeded_workload(tree)
        baseline = [ranking(knnta_search(tree, q)) for q in workload]

        injector = FaultInjector(seed=99)
        injector.configure("tia", schedule=constant(0.1))
        inject_tree_faults(tree, injector)
        for query, expected in zip(workload, baseline):
            answer = robust_knnta(
                tree, query, retry=RetryPolicy(sleep=None)
            )
            assert not answer.used_fallback
            assert ranking(answer) == expected
        assert injector.injected("tia") > 0

    def test_exhausted_retries_fall_back_to_scan(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        expected = ranking(knnta_search(tree, query))

        injector = FaultInjector(seed=0)
        injector.configure("tia", schedule=first_n(3))
        inject_tree_faults(tree, injector)
        answer = robust_knnta(
            tree, query, retry=RetryPolicy(max_retries=2, sleep=None)
        )
        assert answer.used_fallback
        assert answer.reason == "transient-faults"
        assert answer.retries == 2
        assert ranking(answer) == expected

    def test_fallback_false_propagates(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        injector = FaultInjector(seed=0)
        injector.configure("tia", schedule=first_n(50))
        inject_tree_faults(tree, injector)
        with pytest.raises(TransientIOError):
            robust_knnta(
                tree,
                query,
                retry=RetryPolicy(max_retries=1, sleep=None),
                fallback=False,
            )

    def test_corrupt_internal_tias_answered_by_scan(self):
        # Damage every internal TIA: the BFS bound is now a lie, but the
        # scan baseline reads only leaf TIAs and stays exact.
        clean = build_tree()
        query = seeded_workload(clean, n=1)[0]
        expected = ranking(
            sequential_scan(
                clean,
                query,
                normalizer=clean.normalizer(
                    query.interval, query.semantics, exact=True
                ),
            )
        )

        damaged = build_tree()
        for entry in damaged.root.entries:
            entry.tia.replace_all({0: 1})
        answer = robust_knnta(damaged, query, validate=True)
        assert answer.used_fallback
        assert answer.reason == "corruption"
        assert not answer.validation.ok
        assert ranking(answer) == expected

    def test_clean_tree_with_validate_uses_bfs(self):
        tree = build_tree()
        query = seeded_workload(tree, n=1)[0]
        answer = robust_knnta(tree, query, validate=True)
        assert not answer.used_fallback
        assert answer.validation.ok
        assert ranking(answer) == ranking(knnta_search(tree, query))

    def test_tree_method_wrapper(self):
        tree = build_tree()
        query = KNNTAQuery((5.0, 5.0), TimeInterval(0.0, 6.0), k=4)
        direct = tree.query(query)
        robust = tree.robust_query(query)
        assert ranking(robust) == ranking(direct)
        assert len(robust) == 4
        # RobustAnswer rows destructure like the plain QueryResult list.
        assert robust[0] == direct[0]
        assert ranking(robust[1:]) == ranking(direct[1:])


class TestMutationWAL:
    def test_typed_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            assert log.log_insert("a", 1.0, 2.0, {3: 4}) == 0
            assert log.log_digest(3, [["a", 2, 6]]) == 1
            assert log.log_delete("a") == 2
        records, dropped = read_wal(path)
        assert dropped == 0
        assert records == [
            WalRecord(0, "insert", ["a", 1.0, 2.0, [[3, 4]]]),
            WalRecord(1, "digest", [3, [["a", 2, 6]]]),
            WalRecord(2, "delete", ["a"]),
        ]

    def test_reopen_continues_lsns(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            log.log_digest(0, [["a", 1, 1]])
        with MutationWAL(path) as log:
            assert log.next_lsn == 1
            assert log.log_delete("a") == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_wal(str(tmp_path / "nope.wal")) == ([], 0)

    def write_one_of_each(self, path):
        with MutationWAL(path) as log:
            log.log_digest(0, [["a", 1, 1]])
            log.log_insert("b", 1.0, 2.0)
            log.log_delete("a")
            log.log_digest(1, [["b", 2, 2]])

    @pytest.mark.parametrize("cut", [1, 4, 9])
    def test_torn_tail_is_dropped_for_every_record_type(self, tmp_path, cut):
        # Tear each of the trailing records mid-line (digest, delete and
        # insert tails in turn): only the torn suffix may be lost.
        path = str(tmp_path / "x.wal")
        self.write_one_of_each(path)
        with open(path) as handle:
            lines = handle.readlines()
        for torn in range(1, len(lines) + 1):
            torn_path = str(tmp_path / ("torn-%d-%d.wal" % (cut, torn)))
            with open(torn_path, "w") as handle:
                handle.writelines(lines[:-torn])
                handle.write(lines[-torn][:-cut])
            records, dropped = read_wal(torn_path)
            assert dropped == 1
            assert [r.lsn for r in records] == list(range(len(lines) - torn))

    def test_reopen_after_torn_tail_repairs_log(self, tmp_path):
        # The crash signature: file ends mid-record without a newline.
        # Reopening must truncate the torn fragment so the next append
        # starts on a fresh line — otherwise the new (acked, fsync'd)
        # record is glued onto the fragment and lost, and every later
        # read raises for mid-log corruption.
        path = str(tmp_path / "x.wal")
        self.write_one_of_each(path)
        with open(path, "rb+") as handle:
            handle.seek(-5, 2)
            handle.truncate()  # tear the final record mid-line
        with MutationWAL(path) as log:
            assert log.next_lsn == 3  # LSN resumes after the intact prefix
            assert log.log_digest(1, [["b", 2, 2]]) == 3
        records, dropped = read_wal(path)
        assert dropped == 0
        assert [r.lsn for r in records] == [0, 1, 2, 3]

    def test_intact_final_line_without_newline_is_torn(self, tmp_path):
        # An acked record always ends in a newline (append writes the
        # full frame before fsync), so a newline-less final line is a
        # torn write even when its CRC happens to verify.
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            log.log_digest(0, [["a", 1, 1]])
            log.log_digest(1, [["b", 2, 2]])
        with open(path, "rb+") as handle:
            handle.seek(-1, 2)
            handle.truncate()  # strip only the trailing newline
        records, dropped = read_wal(path)
        assert [r.lsn for r in records] == [0]
        assert dropped == 1
        with MutationWAL(path) as log:
            assert log.log_digest(1, [["b", 2, 2]]) == 1
        records, dropped = read_wal(path)
        assert dropped == 0
        assert [r.lsn for r in records] == [0, 1]

    def test_corruption_before_intact_records_raises(self, tmp_path):
        path = str(tmp_path / "x.wal")
        self.write_one_of_each(path)
        with open(path) as handle:
            lines = handle.readlines()
        lines[0] = "deadbeef" + lines[0][8:]  # break the first CRC
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptSnapshotError) as excinfo:
            read_wal(path)
        assert excinfo.value.section == "wal"
        with pytest.raises(CorruptSnapshotError):
            MutationWAL(path)  # opening must refuse, not silently repair

    def test_non_monotonic_lsns_raise(self, tmp_path):
        import json
        import zlib

        path = str(tmp_path / "x.wal")
        with open(path, "w") as handle:
            for lsn in (5, 3):
                body = json.dumps(
                    [lsn, "digest", [0, [["a", 1, 1]]]], separators=(",", ":")
                )
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                handle.write("%08x %s\n" % (crc, body))
        with pytest.raises(CorruptSnapshotError):
            read_wal(path)

    def test_reset_leaves_marker_and_keeps_lsns_increasing(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            log.log_digest(0, [["a", 1, 1]])
            applied = log.log_delete("a")
            assert log.reset(applied) == 2
            assert log.log_digest(7, [["b", 1, 1]]) == 3  # never reused
        records, dropped = read_wal(path)
        assert dropped == 0
        assert records == [
            WalRecord(2, RECORD_CHECKPOINT, [1]),
            WalRecord(3, RECORD_DIGEST, [7, [["b", 1, 1]]]),
        ]

    def test_legacy_digest_log_lines_parse_as_digest_records(self, tmp_path):
        import json
        import zlib

        path = str(tmp_path / "x.digestlog")
        with open(path, "w") as handle:
            for seq, epoch in ((0, 3), (1, 4)):
                body = json.dumps(
                    [seq, epoch, [["a", 1, 1]]], separators=(",", ":")
                )
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                handle.write("%08x %s\n" % (crc, body))
        records, dropped = read_wal(path)
        assert dropped == 0
        assert records == [
            WalRecord(0, RECORD_DIGEST, [3, [["a", 1, 1]]]),
            WalRecord(1, RECORD_DIGEST, [4, [["a", 1, 1]]]),
        ]
        with MutationWAL(path) as log:  # and the LSN sequence continues
            assert log.log_delete("a") == 2

    def test_unrepresentable_poi_id_rejected_before_write(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            with pytest.raises(TypeError):
                log.log_insert((1, 2), 0.0, 0.0)
            with pytest.raises(TypeError):
                log.log_digest(0, [[True, 1, 1]])
            with pytest.raises(ValueError):
                log.append("rename", ["a", "b"])
        assert read_wal(path) == ([], 0)


class TestDeprecatedDigestLogShims:
    def test_digest_log_facade_warns_and_works(self, tmp_path):
        path = str(tmp_path / "x.digestlog")
        with pytest.warns(DeprecationWarning):
            log = DigestLog(path)
        with log:
            assert log.append(3, [["a", 2, 2]]) == 0
            assert log.append(4, [["b", 5, 5]]) == 1
        with pytest.warns(DeprecationWarning):
            records, dropped = read_digest_log(path)
        assert dropped == 0
        assert records == [[0, 3, [["a", 2, 2]]], [1, 4, [["b", 5, 5]]]]

    def test_read_digest_log_ignores_non_digest_records(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with MutationWAL(path) as log:
            log.log_insert("a", 1.0, 2.0)
            log.log_digest(3, [["a", 2, 2]])
            log.log_delete("a")
        with pytest.warns(DeprecationWarning):
            records, dropped = read_digest_log(path)
        assert records == [[1, 3, [["a", 2, 2]]]]
        assert dropped == 0


def make_base_snapshot(dataset, directory):
    """Persist a tree over the first half of ``dataset`` into ``directory``."""
    base = TARTree.build(dataset.snapshot(0.5), tia_backend="memory")
    with CheckpointedIngest(base, str(directory)):
        pass  # construction writes <name>.json
    return str(directory)


def sorted_batches(tree, dataset):
    pending = pending_counts(tree, dataset)
    return [(epoch, dict(pending[epoch])) for epoch in sorted(pending)]


class TestCheckpointedIngestRecovery:
    def reference_run(self, directory, batches):
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches:
                ingest.digest(epoch, counts)
        return tree

    def test_recover_after_abandoned_ingest(self, small_dataset, tmp_path):
        # Crash after N full batches (no checkpoint): replay restores all.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        assert len(batches) >= 3, "dataset too small for the scenario"

        reference = self.reference_run(dir_a, batches)
        self.reference_run(dir_b, batches)  # then "crash" (handle abandoned)

        report = recover(dir_b, dataset=small_dataset)
        assert report.replayed_epochs == len(batches)
        assert report.dropped_tail_records == 0
        assert report.caught_up_checkins == 0  # the WAL alone was enough
        assert_same_tree(reference, report.tree, tmp_path)

    def test_recover_after_crash_mid_digest_epoch(self, small_dataset, tmp_path):
        # The acceptance scenario: kill the process mid-``digest_epoch``
        # (after the WAL append, during TIA application) and recover to a
        # state byte-identical with an uncrashed run.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        reference = self.reference_run(dir_a, batches)

        tree_b = load_tree(dir_b + "/tree.json")
        with CheckpointedIngest(tree_b, dir_b) as ingest:
            for epoch, counts in batches[:-1]:
                ingest.digest(epoch, counts)
            last_epoch, last_counts = batches[-1]
            # Arm write faults that fire only once the WAL record is on
            # disk and ``digest_epoch`` is mutating TIAs.
            threshold = len(last_counts) + 2
            injector = FaultInjector(seed=0)
            injector.configure(
                "tia", schedule=lambda attempt: 1.0 if attempt >= threshold else 0.0
            )
            inject_tree_faults(tree_b, injector, fault_writes=True)
            with pytest.raises(TransientIOError):
                ingest.digest(last_epoch, last_counts)

        records, _ = read_wal(dir_b + "/tree.wal")
        assert records[-1].type == RECORD_DIGEST
        assert records[-1].payload[0] == last_epoch  # logged pre-crash

        report = recover(dir_b, dataset=small_dataset)
        assert report.replayed_epochs >= 1
        assert report.caught_up_checkins == 0
        assert_same_tree(reference, report.tree, tmp_path)
        query = seeded_workload(reference, n=1, seed=23)[0]
        assert ranking(knnta_search(report.tree, query)) == ranking(
            knnta_search(reference, query)
        )

    def test_torn_log_tail_recovered_from_dataset(self, small_dataset, tmp_path):
        # A torn final WAL record loses that batch; reconciling against
        # the source data set still reaches exact consistency.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        reference = self.reference_run(dir_a, batches)
        self.reference_run(dir_b, batches)

        with open(dir_b + "/tree.wal", "rb+") as handle:
            handle.seek(-4, 2)
            handle.truncate()
        report = recover(dir_b, dataset=small_dataset)
        assert report.dropped_tail_records == 1
        assert report.replayed_epochs == len(batches) - 1
        assert report.caught_up_checkins > 0
        # The torn record was never acked, so the recovered tree's
        # applied-LSN high-water mark legitimately stops one record
        # short of the uncrashed run's; everything else is identical.
        assert report.last_lsn == reference.applied_lsn - 1
        assert_same_tree(
            reference, report.tree, tmp_path, ignore_applied_lsn=True
        )

    def test_ingest_resumes_cleanly_after_torn_tail(self, small_dataset, tmp_path):
        # Reviewer reproduction: crash leaves a torn log tail, recovery
        # runs, then a new CheckpointedIngest reuses the directory.  The
        # repaired log must accept fresh batches without losing them or
        # poisoning later reads/recoveries.
        dir_a = make_base_snapshot(small_dataset, tmp_path / "a")
        dir_b = make_base_snapshot(small_dataset, tmp_path / "b")
        batches = sorted_batches(load_tree(dir_a + "/tree.json"), small_dataset)
        assert len(batches) >= 3, "dataset too small for the scenario"
        reference = self.reference_run(dir_a, batches)

        self.reference_run(dir_b, batches[:-1])
        with open(dir_b + "/tree.wal", "rb+") as handle:
            handle.seek(-4, 2)
            handle.truncate()  # crash tears the last record (batches[-2])
        report = recover(dir_b)  # no dataset: torn batch stays pending
        assert report.dropped_tail_records == 1
        assert report.replayed_epochs == len(batches) - 2

        with CheckpointedIngest(report.tree, dir_b) as ingest:
            for epoch, counts in batches[-2:]:
                assert ingest.digest(epoch, counts) is not None
        records, dropped = read_wal(dir_b + "/tree.wal")
        assert dropped == 0
        assert [record.payload[0] for record in records[-2:]] == [
            epoch for epoch, _counts in batches[-2:]
        ]
        final = recover(dir_b)
        assert_same_tree(reference, final.tree, tmp_path)

    def test_max_tree_recovery_reports_skipped_reconciliation(
        self, small_dataset, tmp_path
    ):
        # catch_up() cannot reconcile peak (MAX) histories; recover()
        # must surface the skip instead of pretending "0 caught up".
        rng = random.Random(3)
        tree = TARTree(
            world=Rect((0.0, 0.0), (20.0, 20.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=10.0,
            tia_backend="memory",
            aggregate_kind="max",
        )
        for i in range(20):
            history = {e: rng.randrange(1, 8) for e in range(5)}
            tree.insert_poi(POI(i, rng.random() * 20, rng.random() * 20), history)
        directory = str(tmp_path / "m")
        with CheckpointedIngest(tree, directory) as ingest:
            ingest.digest(6, {0: 9, 1: 4})
        report = recover(directory, dataset=small_dataset)
        assert report.caught_up_checkins is None
        assert "reconciliation skipped" in report.summary()
        assert report.tree.poi_tia(0).get(6) == 9
        no_dataset = recover(directory)
        assert no_dataset.caught_up_checkins == 0  # none requested, none skipped

    def test_checkpoint_truncates_log_and_survives_restart(
        self, small_dataset, tmp_path
    ):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        batches = sorted_batches(load_tree(directory + "/tree.json"), small_dataset)
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches[:2]:
                ingest.digest(epoch, counts)
            ingest.checkpoint()
            records, dropped = read_wal(ingest.log_path)
            assert dropped == 0
            assert [record.type for record in records] == [RECORD_CHECKPOINT]
            for epoch, counts in batches[2:]:
                ingest.digest(epoch, counts)
        report = recover(directory, dataset=small_dataset)
        assert report.replayed_epochs == len(batches) - 2
        assert_same_tree(tree, report.tree, tmp_path)

    def test_crash_between_snapshot_and_truncate_is_harmless(
        self, small_dataset, tmp_path
    ):
        # checkpoint() = snapshot, then truncate.  Crash in between
        # leaves a log fully contained in the snapshot; replay must
        # no-op instead of double-applying.
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        batches = sorted_batches(load_tree(directory + "/tree.json"), small_dataset)
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            for epoch, counts in batches:
                ingest.digest(epoch, counts)
            ingest._write_snapshot()  # crash before log.truncate()
        report = recover(directory, dataset=small_dataset)
        assert report.replayed_epochs == 0  # every record replayed as a no-op
        assert report.caught_up_checkins == 0
        assert_same_tree(tree, report.tree, tmp_path)

    def test_unknown_poi_records_are_skipped(self, small_dataset, tmp_path):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            ingest.log.log_digest(0, [["no-such-poi", 1, 1]])
        report = recover(directory)
        assert report.skipped_pois == 1
        assert "1 unknown POI" in report.summary()

    def test_empty_batches_are_not_logged(self, small_dataset, tmp_path):
        directory = make_base_snapshot(small_dataset, tmp_path / "c")
        tree = load_tree(directory + "/tree.json")
        with CheckpointedIngest(tree, directory) as ingest:
            assert ingest.digest(0, {}) is None
            poi_id = next(iter(tree.poi_ids()))
            assert ingest.digest(0, {poi_id: 0}) is None
        assert read_wal(directory + "/tree.wal") == ([], 0)


def assert_same_tree(expected, actual, tmp_path, ignore_applied_lsn=False):
    """Byte-compare the canonical checksummed serialisations.

    ``ignore_applied_lsn=True`` masks the applied-LSN high-water mark
    before comparing, for scenarios (data-set reconciliation after a
    torn tail) where the recovered tree legitimately sits at an earlier
    WAL position than the uncrashed reference.
    """
    path_a = str(tmp_path / "expected.cmp.json")
    path_b = str(tmp_path / "actual.cmp.json")
    marks = (expected.applied_lsn, actual.applied_lsn)
    if ignore_applied_lsn:
        expected.applied_lsn = actual.applied_lsn = None
    try:
        save_tree(expected, path_a)
        save_tree(actual, path_b)
    finally:
        expected.applied_lsn, actual.applied_lsn = marks
    with open(path_a, "rb") as a, open(path_b, "rb") as b:
        assert a.read() == b.read()
