"""The fault injector: determinism, schedules, storage wrappers."""

import random

import pytest

from repro import POI, TARTree
from repro.reliability.faults import (
    FatalFaultError,
    FaultInjector,
    FaultyBufferPool,
    FaultyTIA,
    TransientIOError,
    constant,
    decaying,
    first_n,
    flip_bit,
    inject_tree_faults,
    torn_write,
    truncate_file,
)
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import MemoryTIA


class TestSchedules:
    def test_constant_rate_validated(self):
        with pytest.raises(ValueError):
            constant(1.5)

    def test_first_n_fires_then_stops(self):
        schedule = first_n(3)
        assert [schedule(i) for i in range(5)] == [1.0, 1.0, 1.0, 0.0, 0.0]

    def test_decaying_halves(self):
        schedule = decaying(0.8, half_life=2)
        assert schedule(0) == pytest.approx(0.8)
        assert schedule(2) == pytest.approx(0.4)
        assert schedule(4) == pytest.approx(0.2)

    def test_decaying_needs_positive_half_life(self):
        with pytest.raises(ValueError):
            decaying(0.5, half_life=0)


class TestFaultInjector:
    def test_unarmed_site_never_fires(self):
        injector = FaultInjector(seed=1)
        assert not any(injector.fires("tia") for _ in range(100))

    def test_deterministic_under_seed(self):
        a = FaultInjector(seed=42, rates={"tia": 0.3})
        b = FaultInjector(seed=42, rates={"tia": 0.3})
        assert [a.fires("tia") for _ in range(200)] == [
            b.fires("tia") for _ in range(200)
        ]

    def test_different_seeds_diverge(self):
        a = FaultInjector(seed=1, rates={"tia": 0.5})
        b = FaultInjector(seed=2, rates={"tia": 0.5})
        assert [a.fires("tia") for _ in range(64)] != [
            b.fires("tia") for _ in range(64)
        ]

    def test_check_raises_and_counts(self):
        injector = FaultInjector(seed=0, rates={"io": 1.0})
        with pytest.raises(TransientIOError):
            injector.check("io")
        assert injector.injected("io") == 1
        assert injector.attempts("io") == 1

    def test_rate_roughly_respected(self):
        injector = FaultInjector(seed=7, rates={"tia": 0.1})
        fired = sum(injector.fires("tia") for _ in range(5000))
        assert 350 < fired < 650  # ~10% of 5000

    def test_suspended_silences_but_counts_attempts(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        with injector.suspended():
            injector.check("tia")  # no raise
        assert injector.attempts("tia") == 1
        assert injector.injected("tia") == 0
        with pytest.raises(TransientIOError):
            injector.check("tia")

    def test_disarm(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        injector.disarm("tia")
        injector.check("tia")  # no raise

    def test_configure_requires_exactly_one_spec(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.configure("tia")
        with pytest.raises(ValueError):
            injector.configure("tia", rate=0.1, schedule=constant(0.1))

    def test_fatal_kind_raises_non_io_error(self):
        # FatalFaultError is deliberately not an IOError: retry loops
        # keyed on transient I/O must not swallow a dead-shard fault.
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.query", schedule=constant(1.0), kind="fatal")
        with pytest.raises(FatalFaultError):
            injector.check("shard.0.query")
        assert not isinstance(FatalFaultError("x"), IOError)
        assert injector.injected("shard.0.query") == 1

    def test_latency_kind_stalls_via_the_injected_sleep(self):
        stalls = []
        injector = FaultInjector(seed=0, sleep=stalls.append)
        injector.configure(
            "shard.1.query", schedule=constant(1.0), kind="latency", delay=0.4
        )
        injector.check("shard.1.query")  # stalls, does not raise
        assert stalls == [0.4]
        assert injector.injected("shard.1.query") == 1

    def test_unknown_kind_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.configure("tia", rate=0.5, kind="gamma-ray")

    def test_latency_requires_positive_delay(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.configure("tia", rate=0.5, kind="latency")
        with pytest.raises(ValueError):
            injector.configure("tia", rate=0.5, kind="latency", delay=0.0)

    def test_open_wrapper_faults_then_delegates(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("hello")
        injector = FaultInjector(seed=0)
        injector.configure("io", schedule=first_n(1))
        with pytest.raises(TransientIOError):
            injector.open(path)
        with injector.open(path) as handle:
            assert handle.read() == "hello"


class TestFaultyBufferPool:
    def test_faults_before_touching_counters(self):
        injector = FaultInjector(seed=0)
        injector.configure("buffer", schedule=first_n(1))
        pool = FaultyBufferPool(4, injector)
        with pytest.raises(TransientIOError):
            pool.access("p")
        assert pool.hits == 0 and pool.misses == 0
        assert pool.access("p") is False
        assert pool.access("p") is True


class TestFaultyTIA:
    def make(self, injector, fault_writes=False):
        inner = MemoryTIA()
        inner.replace_all({0: 3, 2: 5})
        return FaultyTIA(inner, injector, fault_writes=fault_writes)

    def test_reads_fault(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        tia = self.make(injector)
        for operation in (
            lambda: tia.get(0),
            lambda: tia.range_sum(0, 2),
            lambda: tia.range_max(0, 2),
        ):
            with pytest.raises(TransientIOError):
                operation()

    def test_writes_clean_by_default(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        tia = self.make(injector)
        tia.set(4, 7)
        tia.add(4, 1)
        tia.raise_to(4, 10)
        assert dict(tia.items())[4] == 10

    def test_writes_fault_when_enabled(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        tia = self.make(injector, fault_writes=True)
        with pytest.raises(TransientIOError):
            tia.set(4, 7)

    def test_items_and_len_never_fault(self):
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        tia = self.make(injector)
        assert dict(tia.items()) == {0: 3, 2: 5}
        assert len(tia) == 2

    def test_delegates_results(self):
        injector = FaultInjector(seed=0)  # unarmed: never faults
        tia = self.make(injector)
        assert tia.get(2) == 5
        assert tia.range_sum(0, 2) == 8
        assert tia.total() == 8


def small_tree():
    rng = random.Random(3)
    tree = TARTree(
        world=Rect((0.0, 0.0), (10.0, 10.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=8.0,
        tia_backend="memory",
    )
    for i in range(60):
        history = {e: rng.randrange(1, 6) for e in range(8) if rng.random() < 0.5}
        tree.insert_poi(POI(i, rng.random() * 10, rng.random() * 10), history)
    return tree


class TestInjectTreeFaults:
    def test_preserves_invariants_and_identity(self):
        tree = small_tree()
        injector = FaultInjector(seed=0)  # unarmed
        inject_tree_faults(tree, injector)
        tree.check_invariants()
        for poi_id in tree.poi_ids():
            assert isinstance(tree.poi_tia(poi_id), FaultyTIA)

    def test_future_tias_are_wrapped(self):
        tree = small_tree()
        inject_tree_faults(tree, FaultInjector(seed=0))
        tree.insert_poi(POI("new", 5.0, 5.0), {0: 2})
        assert isinstance(tree.poi_tia("new"), FaultyTIA)
        tree.check_invariants()

    def test_idempotent(self):
        tree = small_tree()
        injector = FaultInjector(seed=0)
        inject_tree_faults(tree, injector)
        inject_tree_faults(tree, injector)
        tia = tree.poi_tia(0)
        assert isinstance(tia, FaultyTIA)
        assert not isinstance(tia.inner, FaultyTIA)

    def test_armed_injector_faults_queries(self):
        from repro.core.query import KNNTAQuery
        from repro.temporal.epochs import TimeInterval

        tree = small_tree()
        injector = FaultInjector(seed=0, rates={"tia": 1.0})
        inject_tree_faults(tree, injector)
        query = KNNTAQuery((5.0, 5.0), TimeInterval(0.0, 8.0), k=3)
        from repro.core.knnta import knnta_search

        with pytest.raises(TransientIOError):
            knnta_search(tree, query)
        assert injector.injected("tia") > 0


class TestFileMutators:
    def test_flip_bit_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(range(16)))
        flipped = flip_bit(path, bit_index=13)
        data = path.read_bytes()
        assert flipped == 13
        assert data[1] == 1 ^ (1 << 5)
        assert data[0] == 0 and data[2:] == bytes(range(2, 16))

    def test_flip_bit_rejects_empty_and_out_of_range(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            flip_bit(empty)
        short = tmp_path / "short"
        short.write_bytes(b"x")
        with pytest.raises(ValueError):
            flip_bit(short, bit_index=800)

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"0123456789")
        assert truncate_file(path, keep_fraction=0.4) == 4
        assert path.read_bytes() == b"0123"

    def test_torn_write(self, tmp_path):
        path = tmp_path / "blob"
        kept = torn_write(path, "abcdefgh", fraction=0.25)
        assert kept == 2
        assert path.read_bytes() == b"ab"
