"""Mutation-WAL chaos tests: the full insert/delete/digest stream.

The acceptance scenario for the WAL redesign: an interleaved
insert/delete/digest mutation stream, killed at *every* record boundary
(and mid-record, for torn tails), must recover to a snapshot
byte-identical with an uncrashed run stopped at the same point — and
:func:`repro.reliability.recovery.recover` must report replayed LSN
counts per record type.
"""

import os
import random
import shutil

import pytest

from repro import POI, TARTree
from repro.core.tar_tree import UnloggedMutationError
from repro.reliability.recovery import CheckpointedIngest, recover
from repro.reliability.wal import (
    RECORD_DELETE,
    RECORD_DIGEST,
    RECORD_INSERT,
    MutationWAL,
)
from repro.spatial.geometry import Rect
from repro.storage.serialize import load_tree, save_tree
from repro.temporal.epochs import EpochClock


def build_tree(pois=20, seed=5, **kwargs):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (20.0, 20.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        tia_backend="memory",
        **kwargs,
    )
    for i in range(pois):
        history = {e: rng.randrange(1, 8) for e in range(10) if rng.random() < 0.6}
        tree.insert_poi(POI(i, rng.random() * 20, rng.random() * 20), history)
    return tree


def tree_bytes(tree, tmp_path):
    path = str(tmp_path / "state.cmp.json")
    save_tree(tree, path)
    with open(path, "rb") as handle:
        return handle.read()


def mixed_stream(rng):
    """An interleaved insert/delete/digest mutation plan."""
    return [
        ("insert", POI(100, 3.0, 4.0), {2: 5, 7: 1}),
        ("digest", 10, {0: 2, 1: 1, 100: 3}),
        ("delete", 3),
        ("insert", POI(101, 15.0, 15.0), None),
        ("digest", 11, {100: 1, 101: 4, 5: 2}),
        ("delete", 100),
        ("digest", 12, {101: 1, 2: 3}),
        ("insert", POI(102, 9.5, 0.5), {11: 2}),
        ("delete", 7),
        ("digest", 13, {102: 6, 101: 1}),
        ("insert", POI(103, rng.uniform(1, 19), rng.uniform(1, 19)), None),
        ("digest", 14, {103: 2, 0: 1}),
    ]


def apply_mutation(ingest, mutation):
    kind = mutation[0]
    if kind == "insert":
        return ingest.insert(mutation[1], mutation[2])
    if kind == "delete":
        return ingest.delete(mutation[1])
    return ingest.digest(mutation[1], mutation[2])


class TestKillAtEveryRecordBoundary:
    def run_stream(self, tmp_path):
        """Run the mixed stream, recording per-boundary WAL offsets and
        the expected (uncrashed) tree bytes at each boundary."""
        rng = random.Random(17)
        directory = str(tmp_path / "live")
        tree = build_tree()
        stream = mixed_stream(rng)
        offsets = []
        expected = []
        with CheckpointedIngest(tree, directory) as ingest:
            offsets.append(os.path.getsize(ingest.log_path))
            expected.append(tree_bytes(tree, tmp_path))
            for mutation in stream:
                assert apply_mutation(ingest, mutation) is not None
                offsets.append(os.path.getsize(ingest.log_path))
                expected.append(tree_bytes(tree, tmp_path))
        return directory, stream, offsets, expected

    def crash_copy(self, directory, tmp_path, label, wal_bytes):
        """A state directory as a kill at byte ``wal_bytes`` leaves it."""
        crashed = str(tmp_path / ("crash-%s" % label))
        os.makedirs(crashed)
        shutil.copy(directory + "/tree.json", crashed + "/tree.json")
        with open(directory + "/tree.wal", "rb") as handle:
            prefix = handle.read()[:wal_bytes]
        with open(crashed + "/tree.wal", "wb") as handle:
            handle.write(prefix)
        return crashed

    def test_recovery_is_byte_identical_at_every_boundary(self, tmp_path):
        directory, stream, offsets, expected = self.run_stream(tmp_path)
        for i, offset in enumerate(offsets):
            crashed = self.crash_copy(directory, tmp_path, "b%d" % i, offset)
            report = recover(crashed)
            assert report.dropped_tail_records == 0
            assert tree_bytes(report.tree, tmp_path) == expected[i], (
                "kill after record %d diverged" % i
            )
            counts = {RECORD_INSERT: 0, RECORD_DELETE: 0, RECORD_DIGEST: 0}
            for mutation in stream[:i]:
                counts[mutation[0]] += 1
            assert report.replayed == counts

    def test_recovery_drops_torn_tail_at_every_boundary(self, tmp_path):
        # Kill *mid*-record: the torn suffix must be dropped and the
        # state must equal the previous boundary's.
        directory, _stream, offsets, expected = self.run_stream(tmp_path)
        for i in range(1, len(offsets)):
            cut = offsets[i] - 3
            assert cut > offsets[i - 1]
            crashed = self.crash_copy(directory, tmp_path, "t%d" % i, cut)
            report = recover(crashed)
            assert report.dropped_tail_records == 1
            assert tree_bytes(report.tree, tmp_path) == expected[i - 1], (
                "torn record %d diverged" % i
            )

    def test_final_report_counts_by_record_type(self, tmp_path):
        directory, stream, _offsets, expected = self.run_stream(tmp_path)
        report = recover(directory)
        assert report.replayed == {
            RECORD_INSERT: sum(1 for m in stream if m[0] == "insert"),
            RECORD_DELETE: sum(1 for m in stream if m[0] == "delete"),
            RECORD_DIGEST: sum(1 for m in stream if m[0] == "digest"),
        }
        assert report.last_lsn == len(stream) - 1
        assert "%d insert(s)" % report.replayed[RECORD_INSERT] in report.summary()
        assert tree_bytes(report.tree, tmp_path) == expected[-1]


class TestWrappedTreeContract:
    def test_direct_tree_mutations_are_logged(self, tmp_path):
        # The hooks live on the tree, so mutations that bypass the
        # ingest facade are still write-ahead logged and replayable.
        directory = str(tmp_path / "s")
        tree = build_tree()
        with CheckpointedIngest(tree, directory):
            tree.insert_poi(POI(200, 1.0, 1.0), {0: 3})
            tree.digest_epoch(10, {200: 2, 0: 1})
            assert tree.delete_poi(5)
        report = recover(directory)
        assert report.replayed == {
            RECORD_INSERT: 1,
            RECORD_DELETE: 1,
            RECORD_DIGEST: 1,
        }
        assert 200 in report.tree and 5 not in report.tree
        assert tree_bytes(report.tree, tmp_path) == tree_bytes(tree, tmp_path)

    def test_crash_between_append_and_apply_replays_the_record(self, tmp_path):
        # Write-ahead means the log can run ahead of the tree: a record
        # that was fsync'd but never applied must replay on recovery.
        directory = str(tmp_path / "s")
        tree = build_tree()
        with CheckpointedIngest(tree, directory):
            tree.digest_epoch(10, {0: 2})
        with MutationWAL(directory + "/tree.wal") as log:
            log.log_insert(201, 2.5, 2.5, {10: 4})
            log.log_delete(1)
        report = recover(directory)
        assert report.replayed[RECORD_INSERT] == 1
        assert report.replayed[RECORD_DELETE] == 1
        assert 201 in report.tree and 1 not in report.tree
        assert report.tree.poi_tia(201).get(10) == 4
        assert report.last_lsn == 2

    def test_unloggable_mutations_raise_while_wrapped(self, tmp_path):
        tree = build_tree()
        with CheckpointedIngest(tree, str(tmp_path / "s")):
            with pytest.raises(UnloggedMutationError):
                tree.bulk_load([(POI(300, 1.0, 1.0), {0: 1})])
            with pytest.raises(UnloggedMutationError):
                tree.refresh_aggregate_dimension()
        # close() detaches the listener; the tree is free again.
        tree.refresh_aggregate_dimension()

    def test_second_listener_rejected(self, tmp_path):
        tree = build_tree()
        with CheckpointedIngest(tree, str(tmp_path / "a")):
            with pytest.raises(ValueError):
                CheckpointedIngest(tree, str(tmp_path / "b"))
        # the failed wrap must not have detached the first listener's
        # slot permanently: a fresh wrap works after close()
        with CheckpointedIngest(tree, str(tmp_path / "c")) as ingest:
            assert ingest.insert(POI(400, 2.0, 2.0)) is not None

    def test_unknown_poi_digest_rejected_before_logging(self, tmp_path):
        directory = str(tmp_path / "s")
        tree = build_tree()
        with CheckpointedIngest(tree, directory) as ingest:
            with pytest.raises(KeyError):
                tree.digest_epoch(10, {"no-such-poi": 2, 0: 1})
            assert os.path.getsize(ingest.log_path) == 0
            # and nothing was half-applied before the raise
            assert tree.poi_tia(0).get(10) == 0


class TestLegacyDigestLogState:
    def test_pr1_digestlog_directory_recovers_and_extends(self, tmp_path):
        # A PR-1 state directory: v-era snapshot (no applied LSN) plus a
        # digest-only log under the old file name.  recover() must
        # replay it, and a new CheckpointedIngest must keep appending to
        # the legacy path rather than forking a second log.
        import json
        import zlib

        directory = str(tmp_path / "legacy")
        os.makedirs(directory)
        tree = build_tree()
        save_tree(tree, directory + "/tree.json")
        with open(directory + "/tree.digestlog", "w") as handle:
            for seq, (epoch, pairs) in enumerate(
                [(10, [[0, 2, tree.poi_tia(0).get(10) + 2]]),
                 (11, [[1, 3, tree.poi_tia(1).get(11) + 3]])]
            ):
                body = json.dumps([seq, epoch, pairs], separators=(",", ":"))
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                handle.write("%08x %s\n" % (crc, body))
        report = recover(directory)
        assert report.replayed[RECORD_DIGEST] == 2
        assert report.tree.poi_tia(0).get(10) == 2
        assert report.last_lsn == 1

        with CheckpointedIngest(report.tree, directory) as ingest:
            assert ingest.log_path.endswith(".digestlog")
            ingest.digest(12, {2: 1})
        assert not os.path.exists(directory + "/tree.wal")
        final = recover(directory)
        # the snapshot predates every record (no applied LSN), so all
        # three digests replay — idempotently — onto it
        assert final.replayed[RECORD_DIGEST] == 3
        assert final.tree.poi_tia(0).get(10) == 2
        assert final.tree.poi_tia(2).get(12) == 1
