"""Deep invariant validators: clean trees pass, damage is reported."""

import random

import pytest

from repro import POI, TARTree
from repro.reliability.validate import validate_against_dataset, validate_tree
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def build_tree(pois=80, seed=1, **kwargs):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (50.0, 50.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        tia_backend="memory",
        **kwargs,
    )
    for i in range(pois):
        history = {e: rng.randrange(1, 7) for e in range(10) if rng.random() < 0.5}
        tree.insert_poi(POI(i, rng.random() * 50, rng.random() * 50), history)
    return tree


def first_internal_entry(tree):
    assert not tree.root.is_leaf, "tree too small to have internal entries"
    return tree.root.entries[0]


class TestValidateTree:
    def test_clean_tree_passes_with_coverage(self):
        tree = build_tree()
        report = validate_tree(tree)
        assert report.ok
        assert report.checked_pois == len(tree)
        assert report.checked_nodes == tree.node_count()
        assert "no violations" in report.summary()

    def test_max_invariant_violation_detected(self):
        tree = build_tree()
        entry = first_internal_entry(tree)
        entry.tia.replace_all({0: 1})  # lie about the children's maxima
        report = validate_tree(tree)
        assert not report.ok
        assert "max-invariant" in report.codes()

    def test_raised_internal_tia_also_detected(self):
        # Property 1 only needs an upper bound, but the repo maintains
        # *exact* per-epoch maxima; inflation must be flagged too.
        tree = build_tree()
        entry = first_internal_entry(tree)
        inflated = dict(entry.tia.items())
        inflated[0] = inflated.get(0, 0) + 1000
        entry.tia.replace_all(inflated)
        assert "max-invariant" in validate_tree(tree).codes()

    def test_stale_mbr_detected(self):
        tree = build_tree()
        entry = first_internal_entry(tree)
        entry.mbr = Rect((0.0, 0.0), (49.0, 49.0)).union(entry.mbr)
        report = validate_tree(tree)
        assert "mbr" in report.codes()

    def test_size_bookkeeping_violation(self):
        tree = build_tree()
        victim = next(iter(tree.poi_ids()))
        del tree._pois[victim]
        report = validate_tree(tree)
        assert not report.ok
        assert "size" in report.codes() or "unknown-poi" in report.codes()

    def test_broken_parent_pointer(self):
        tree = build_tree()
        child = tree.root.entries[0].child
        child.parent = None
        assert "parent-pointer" in validate_tree(tree).codes()

    def test_summary_caps_output(self):
        tree = build_tree()
        for entry in tree.root.entries:
            entry.tia.replace_all({0: 1})
        report = validate_tree(tree)
        text = report.summary(limit=1)
        assert "and %d more" % (len(report.violations) - 1) in text

    def test_raise_if_failed(self):
        tree = build_tree()
        first_internal_entry(tree).tia.replace_all({0: 1})
        with pytest.raises(AssertionError):
            validate_tree(tree).raise_if_failed()

    def test_check_invariants_delegates(self):
        # The tree method must keep raising on damage (even under -O).
        tree = build_tree()
        tree.check_invariants()
        first_internal_entry(tree).tia.replace_all({0: 1})
        with pytest.raises(AssertionError):
            tree.check_invariants()


class TestValidateAgainstDataset:
    def test_built_tree_matches_its_dataset(self, small_dataset):
        tree = TARTree.build(small_dataset, tia_backend="memory")
        report = validate_against_dataset(tree, small_dataset)
        assert report.ok
        assert report.checked_pois == len(tree)

    def test_lagging_tree_reports_missing_history(self, small_dataset):
        # Index a 60% prefix of the history; the tree's TIAs then lag the
        # full data set -- recoverable, so only "missing-history".
        tree = TARTree.build(small_dataset.snapshot(0.6), tia_backend="memory")
        report = validate_against_dataset(tree, small_dataset)
        assert not report.ok
        assert report.codes() == ["missing-history"]

    def test_caught_up_tree_passes(self, small_dataset):
        from repro.datasets.streaming import catch_up

        tree = TARTree.build(small_dataset.snapshot(0.6), tia_backend="memory")
        catch_up(tree, small_dataset)
        assert validate_against_dataset(tree, small_dataset).ok

    def test_tampered_history_is_a_mismatch(self, small_dataset):
        tree = TARTree.build(small_dataset, tia_backend="memory")
        poi_id = next(iter(tree.poi_ids()))
        tia = tree.poi_tia(poi_id)
        history = dict(tia.items())
        epoch = next(iter(history))
        history[epoch] += 5  # over-count: not recoverable lag
        tia.replace_all(history)
        report = validate_against_dataset(tree, small_dataset)
        assert "history-mismatch" in report.codes()

    def test_foreign_poi_reported(self, small_dataset):
        tree = TARTree.build(small_dataset, tia_backend="memory")
        tree.insert_poi(POI("ghost", *next(iter(small_dataset.positions.values()))))
        report = validate_against_dataset(tree, small_dataset)
        assert "foreign-poi" in report.codes()

    def test_merge_with_structural_report(self, small_dataset):
        tree = TARTree.build(small_dataset, tia_backend="memory")
        merged = validate_tree(tree).extend(
            validate_against_dataset(tree, small_dataset)
        )
        assert merged.ok
        assert merged.checked_pois == 2 * len(tree)
