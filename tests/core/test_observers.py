"""Post-mutation observer hygiene on the TAR-tree.

Derived state (frame caches, scrub manifests, subscription indexes)
stays coherent only if every observer sees every mutation exactly once
— so registration dedupes, a raising observer cannot rob the ones after
it of the event, and removal during notification is safe.
"""

import pytest

from repro import POI, TARTree


@pytest.fixture
def tree(small_dataset):
    return TARTree.build(small_dataset.snapshot(0.7))


def fresh_poi(tree, name="obs-poi"):
    epoch = tree.clock.epoch_of(tree.current_time)
    return POI(name, 33.0, 44.0), {epoch: 5}


class TestRegistration:
    def test_double_add_notifies_once(self, tree):
        events = []

        def observer(kind, poi_ids):
            events.append((kind, tuple(poi_ids)))

        assert tree.add_mutation_observer(observer) is observer
        tree.add_mutation_observer(observer)  # dedup: no second slot
        poi, aggregates = fresh_poi(tree)
        tree.insert_poi(poi, aggregates)
        assert events == [("insert", (poi.poi_id,))]

    def test_remove_reports_membership(self, tree):
        def observer(kind, poi_ids):
            pass

        tree.add_mutation_observer(observer)
        assert tree.remove_mutation_observer(observer) is True
        assert tree.remove_mutation_observer(observer) is False

    def test_every_entry_point_notifies(self, tree):
        events = []
        tree.add_mutation_observer(lambda kind, ids: events.append(kind))
        poi, aggregates = fresh_poi(tree)
        tree.insert_poi(poi, aggregates)
        tree.digest_epoch(
            tree.clock.epoch_of(tree.current_time), {poi.poi_id: 2}
        )
        tree.delete_poi(poi.poi_id)
        assert events == ["insert", "digest", "delete"]

    def test_missed_delete_is_not_a_mutation(self, tree):
        events = []
        tree.add_mutation_observer(lambda kind, ids: events.append(kind))
        assert tree.delete_poi("never-existed") is False
        assert events == []


class TestRaisingObservers:
    def test_later_observers_still_run_and_first_error_propagates(self, tree):
        seen = []

        def bad_one(kind, poi_ids):
            raise RuntimeError("first failure")

        def bad_two(kind, poi_ids):
            raise ValueError("second failure")

        tree.add_mutation_observer(bad_one)
        tree.add_mutation_observer(bad_two)
        tree.add_mutation_observer(lambda kind, ids: seen.append(kind))
        poi, aggregates = fresh_poi(tree)
        with pytest.raises(RuntimeError, match="first failure"):
            tree.insert_poi(poi, aggregates)
        # The mutation applied and the healthy observer heard about it.
        assert poi.poi_id in tree
        assert seen == ["insert"]

    def test_tree_survives_and_keeps_notifying_after_an_error(self, tree):
        calls = []

        def flaky(kind, poi_ids):
            calls.append(kind)
            if len(calls) == 1:
                raise RuntimeError("transient")

        tree.add_mutation_observer(flaky)
        poi, aggregates = fresh_poi(tree)
        with pytest.raises(RuntimeError):
            tree.insert_poi(poi, aggregates)
        tree.delete_poi(poi.poi_id)
        assert calls == ["insert", "delete"]


class TestReentrantRemoval:
    def test_observer_removing_itself_mid_notification_is_safe(self, tree):
        events = []

        def self_removing(kind, poi_ids):
            events.append("self")
            tree.remove_mutation_observer(self_removing)

        tree.add_mutation_observer(self_removing)
        tree.add_mutation_observer(lambda kind, ids: events.append("after"))
        poi, aggregates = fresh_poi(tree)
        tree.insert_poi(poi, aggregates)
        # The snapshot iteration still reached the later observer, and
        # the self-removal sticks for the next mutation.
        assert events == ["self", "after"]
        tree.delete_poi(poi.poi_id)
        assert events == ["self", "after", "after"]

    def test_observer_removing_a_peer_mid_notification_is_safe(self, tree):
        events = []

        def victim(kind, poi_ids):
            events.append("victim")

        def assassin(kind, poi_ids):
            events.append("assassin")
            tree.remove_mutation_observer(victim)

        tree.add_mutation_observer(assassin)
        tree.add_mutation_observer(victim)
        poi, aggregates = fresh_poi(tree)
        tree.insert_poi(poi, aggregates)
        # This round ran from a snapshot, so the victim still fired...
        assert events == ["assassin", "victim"]
        tree.delete_poi(poi.poi_id)
        # ...but the next round honours the removal.
        assert events == ["assassin", "victim", "assassin"]
