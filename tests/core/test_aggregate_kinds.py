"""Aggregate kinds beyond count: SUM and MAX (Section 3.1's extension)."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import AggregateKind, MemoryTIA


def make_tree(kind, **kwargs):
    return TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        aggregate_kind=kind,
        tia_backend=kwargs.pop("tia_backend", "memory"),
        **kwargs,
    )


def random_histories(n, seed, epochs=12, high=30):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        history = {
            e: rng.randrange(1, high)
            for e in range(epochs)
            if rng.random() < 0.5
        }
        out.append((POI(i, rng.random() * 100, rng.random() * 100), history))
    return out


class TestAggregateKindEnum:
    def test_combine_sum(self):
        tia = MemoryTIA()
        tia.replace_all({0: 2, 1: 5, 2: 3})
        clock = EpochClock(0.0, 1.0)
        interval = TimeInterval(0, 3)
        assert AggregateKind.COUNT.combine(tia, clock, interval, _sem()) == 10
        assert AggregateKind.SUM.combine(tia, clock, interval, _sem()) == 10

    def test_combine_max(self):
        tia = MemoryTIA()
        tia.replace_all({0: 2, 1: 5, 2: 3})
        clock = EpochClock(0.0, 1.0)
        assert AggregateKind.MAX.combine(tia, clock, TimeInterval(0, 3), _sem()) == 5
        assert AggregateKind.MAX.combine(tia, clock, TimeInterval(2, 3), _sem()) == 3

    def test_string_resolution_on_tree(self):
        assert make_tree("max").aggregate_kind is AggregateKind.MAX
        assert make_tree("SUM").aggregate_kind is AggregateKind.SUM
        with pytest.raises(ValueError):
            make_tree("median")


def _sem():
    from repro.temporal.tia import IntervalSemantics

    return IntervalSemantics.INTERSECTS


class TestRangeMaxBackends:
    @pytest.mark.parametrize("backend", ["memory", "paged", "mvbt"])
    def test_range_max_matches_reference(self, backend):
        from repro.storage.stats import AccessStats
        from repro.temporal.tia import make_tia_factory

        tia = make_tia_factory(backend, stats=AccessStats())()
        data = {e * 2: (e * 7) % 13 + 1 for e in range(60)}
        tia.replace_all(data)
        for lo, hi in [(0, 200), (10, 50), (51, 53), (200, 300), (5, 4)]:
            expected = max(
                (v for k, v in data.items() if lo <= k <= hi), default=0
            )
            assert tia.range_max(lo, hi) == expected, (backend, lo, hi)


class TestMaxAggregateTree:
    """kNNTA ranking by the peak-epoch value instead of the total."""

    @pytest.mark.parametrize("alpha0", [0.2, 0.5, 0.8])
    def test_bfs_matches_scan(self, alpha0):
        tree = make_tree(AggregateKind.MAX)
        for poi, history in random_histories(200, seed=1):
            tree.insert_poi(poi, history)
        tree.check_invariants()
        query = KNNTAQuery((40.0, 60.0), TimeInterval(2, 9), k=15, alpha0=alpha0)
        bfs = [round(r.score, 10) for r in knnta_search(tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(tree, query)]
        assert bfs == scan

    def test_max_and_count_rank_differently(self):
        """A bursty POI outranks a steady one under MAX, not under COUNT."""
        pois = [
            (POI("bursty", 50, 50), {5: 100}),               # total 100, peak 100
            (POI("steady", 50, 51), {e: 20 for e in range(10)}),  # total 200, peak 20
        ]
        trees = {}
        for kind in (AggregateKind.COUNT, AggregateKind.MAX):
            tree = make_tree(kind)
            for poi, history in pois:
                tree.insert_poi(poi, history)
            trees[kind] = tree
        query = KNNTAQuery((50, 50.5), TimeInterval(0, 10), k=1, alpha0=0.01)
        count_top = trees[AggregateKind.COUNT].query(query)
        max_top = trees[AggregateKind.MAX].query(query)
        assert count_top[0].poi_id == "steady"
        assert max_top[0].poi_id == "bursty"

    def test_digest_epoch_raises_peaks(self):
        tree = make_tree(AggregateKind.MAX)
        tree.insert_poi(POI("a", 1, 1))
        tree.digest_epoch(0, {"a": 5})
        tree.digest_epoch(0, {"a": 3})   # lower report: peak unchanged
        tree.digest_epoch(0, {"a": 9})
        assert tree.poi_tia("a").get(0) == 9
        tree.check_invariants()

    def test_normalizer_uses_max_combination(self):
        tree = make_tree(AggregateKind.MAX)
        tree.insert_poi(POI("a", 1, 1), {0: 4, 1: 6})
        tree.insert_poi(POI("b", 2, 2), {0: 7})
        interval = TimeInterval(0, 2)
        # Bound = max over epochs of the global per-epoch maxima = 7,
        # not the sum 13.
        assert tree.max_aggregate_bound(interval) == 7
        assert tree.normalizer(interval, exact=True).g_max == 7


class TestSumAggregateTree:
    def test_weighted_histories(self):
        """SUM over weighted contributions (e.g. likes, not visits)."""
        tree = make_tree(AggregateKind.SUM, tia_backend="paged")
        for poi, history in random_histories(150, seed=2, high=500):
            tree.insert_poi(poi, history)
        tree.check_invariants()
        query = KNNTAQuery((20.0, 20.0), TimeInterval(0, 12), k=10, alpha0=0.3)
        bfs = [round(r.score, 10) for r in knnta_search(tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(tree, query)]
        assert bfs == scan
