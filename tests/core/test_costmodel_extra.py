"""Additional cost-model coverage: partial fits, extremes, band shapes."""

import numpy as np
import pytest

from repro.core.costmodel import CostModel


class TestFromAggregatesPartialArguments:
    @pytest.fixture(scope="class")
    def aggregates(self):
        rng = np.random.default_rng(3)
        return np.floor(
            4.5 * (1 - rng.random(4000)) ** (-1 / 1.6) + 0.5
        ).astype(int)

    def test_beta_only_fixed(self, aggregates):
        model = CostModel.from_aggregates(aggregates, capacity=36, beta=2.6)
        assert model.beta == 2.6
        assert model.xmin >= 1  # xmin still estimated

    def test_xmin_only_fixed(self, aggregates):
        model = CostModel.from_aggregates(aggregates, capacity=36, xmin=5)
        assert model.xmin == 5
        assert 1.0 < model.beta < 8.0

    def test_xmin_clamped_to_max(self, aggregates):
        model = CostModel.from_aggregates(
            [3, 4, 5, 6], capacity=36, beta=2.5, xmin=100
        )
        assert model.xmin == 6

    def test_fanout_override(self, aggregates):
        default = CostModel.from_aggregates(aggregates, capacity=36, beta=2.6, xmin=5)
        packed = CostModel.from_aggregates(
            aggregates, capacity=36, beta=2.6, xmin=5, fanout_ratio=1.0
        )
        assert packed.fanout > default.fanout
        # Fuller nodes -> fewer node accesses for the same region.
        assert packed.estimate_node_accesses(k=10, alpha0=0.3) <= (
            default.estimate_node_accesses(k=10, alpha0=0.3)
        )


class TestExtremes:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel(n_pois=5000, beta=2.4, xmin=3, max_aggregate=800, capacity=36)

    def test_k_equals_population_saturates(self, model):
        fpk = model.estimate_fpk(10 ** 9, alpha0=0.3)
        assert fpk == 1.0

    def test_alpha_extremes_are_finite(self, model):
        for alpha0 in (0.01, 0.99):
            fpk = model.estimate_fpk(10, alpha0)
            assert 0.0 < fpk <= 1.0
            na = model.estimate_node_accesses(k=10, alpha0=alpha0)
            assert 0.0 <= na <= model.n_pois / model.fanout

    def test_single_layer_model(self):
        # Degenerate case: xmin == max_aggregate, everything on one layer.
        model = CostModel(100, 2.5, 7, 7, capacity=36)
        assert model.layer_height(7) == 0.0
        fpk = model.estimate_fpk(5, 0.3)
        assert 0.0 < fpk <= 1.0
        assert model.estimate_node_accesses(k=5, alpha0=0.3) >= 0.0

    def test_fixed_fpk_estimates_stay_bounded_across_alpha(self, model):
        # At a fixed f(pk) the cone trades base radius against height as
        # alpha0 moves (no monotone direction), but the estimate must
        # always stay within the physical bounds.
        leaf_count = model.n_pois / model.fanout
        for alpha0 in (0.1, 0.3, 0.5, 0.7, 0.9):
            estimate = model.estimate_node_accesses(fpk=0.3, alpha0=alpha0)
            assert 0.0 <= estimate <= leaf_count


class TestBandShapes:
    def test_heavier_tail_means_more_bands(self):
        light = CostModel(3000, 3.2, 5, 600, capacity=36)
        heavy = CostModel(3000, 2.1, 5, 600, capacity=36)
        # A heavier tail spreads POIs across more layers, so the cubic
        # node condition closes bands more often lower down.
        assert len(heavy.bands()) >= len(light.bands()) >= 1

    def test_band_population_conserved(self):
        model = CostModel(2000, 2.5, 4, 500, capacity=36)
        total = sum(population for _, _, population, _ in model.bands())
        assert total == pytest.approx(float(np.sum(model._counts)))
