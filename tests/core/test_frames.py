"""Packed node frames: coherence, invalidation and bit-identical answers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import POI, TARTree, TimeInterval
from repro.core.collective import CollectiveProcessor
from repro.core.frames import FrameStore, build_frame
from repro.core.knnta import knnta_browse, knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import AggregateKind, IntervalSemantics


def build_tree(n=120, seed=0, node_size=None, aggregate_kind=AggregateKind.SUM):
    rng = random.Random(seed)
    kwargs = {} if node_size is None else {"node_size": node_size}
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        aggregate_kind=aggregate_kind,
        **kwargs,
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def all_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        for entry in node.entries:
            if entry.child is not None:
                stack.append(entry.child)


def warm_frames(tree):
    for node in all_nodes(tree):
        assert tree.frames.frame(node) is not None


def assert_frames_byte_equal(tree):
    """Every served frame matches a fresh object-layer build, byte for byte."""
    for node in all_nodes(tree):
        packed = tree.frames.frame(node)
        fresh = build_frame(node)
        assert packed.coords.tobytes() == fresh.coords.tobytes()
        assert packed.epochs.tobytes() == fresh.epochs.tobytes()
        assert packed.values.tobytes() == fresh.values.tobytes()
        assert packed.offsets.tobytes() == fresh.offsets.tobytes()
        assert packed.count == len(node.entries)


def make_query(rng, tree, k=10):
    return KNNTAQuery(
        (rng.random() * 100, rng.random() * 100),
        TimeInterval(rng.randrange(0, 6), rng.randrange(6, 13)),
        k=k,
        alpha0=rng.choice([0.1, 0.3, 0.5, 0.9]),
        semantics=rng.choice(
            [IntervalSemantics.INTERSECTS, IntervalSemantics.CONTAINED]
        ),
    )


def answers_both_paths(tree, query):
    packed = list(knnta_search(tree, query))
    tree.frames.enabled = False
    try:
        plain = list(knnta_search(tree, query))
    finally:
        tree.frames.enabled = True
    return packed, plain


class TestInvalidationPerMutationKind:
    """Satellite: every mutation kind leaves served frames byte-equal
    to a freshly computed object-path build."""

    def test_insert(self):
        tree = build_tree(seed=1)
        warm_frames(tree)
        rng = random.Random(2)
        for i in range(200, 215):
            tree.insert_poi(
                POI(i, rng.random() * 100, rng.random() * 100), {3: 4}
            )
            assert_frames_byte_equal(tree)

    def test_delete(self):
        tree = build_tree(seed=3)
        warm_frames(tree)
        rng = random.Random(4)
        for poi_id in rng.sample(range(120), 30):
            assert tree.delete_poi(poi_id)
            assert_frames_byte_equal(tree)

    def test_digest(self):
        tree = build_tree(seed=5)
        warm_frames(tree)
        rng = random.Random(6)
        for epoch in range(12, 18):
            counts = {
                poi_id: rng.randrange(1, 7)
                for poi_id in rng.sample(range(120), 25)
            }
            tree.digest_epoch(epoch, counts)
            assert_frames_byte_equal(tree)

    def test_split_and_forced_reinsert(self):
        # A small node size forces overflow handling — both the R*
        # forced-reinsertion pass and genuine splits — while frames for
        # the pre-overflow shape are warm.
        tree = build_tree(n=8, seed=7, node_size=256)
        rng = random.Random(8)
        for i in range(100, 160):
            warm_frames(tree)
            tree.insert_poi(
                POI(i, rng.random() * 100, rng.random() * 100),
                {e: rng.randrange(1, 5) for e in range(0, 12, 3)},
            )
            assert_frames_byte_equal(tree)
        assert sum(1 for _ in all_nodes(tree)) > 3  # splits really happened

    def test_scrubber_style_inplace_repair(self):
        # replace_all on an internal TIA (the scrubber's repair) must
        # invalidate the owning node's frame via its stamp.
        tree = build_tree(seed=9)
        warm_frames(tree)
        node = tree.root
        entry = node.entries[0]
        if entry.child is None:
            pytest.skip("tree too small to have an internal entry")
        entry.tia.replace_all({0: 999})
        node.stamp += 1
        frame = tree.frames.frame(node)
        fresh = build_frame(node)
        assert frame.values.tobytes() == fresh.values.tobytes()
        assert 999 in list(frame.values)


class TestStampsAndObservers:
    def test_observer_clears_cache_on_insert(self):
        tree = build_tree(seed=10)
        warm_frames(tree)
        assert len(tree.frames) > 0
        tree.insert_poi(POI(999, 1.0, 1.0), {0: 1})
        assert len(tree.frames) == 0

    def test_observer_pops_digest_path_only(self):
        tree = build_tree(seed=11)
        warm_frames(tree)
        before = len(tree.frames)
        tree.digest_epoch(12, {0: 3})
        leaf = tree._leaf_of[0]
        assert tree.frames.cached(leaf) is None
        # digestion never restructures: untouched siblings stay cached
        assert len(tree.frames) >= before - (tree.root.level + 1)

    def test_stamp_catches_missed_invalidation(self):
        # Correctness must not depend on the observer: with the
        # observer detached, the per-node stamp alone must force a
        # rebuild instead of serving the stale frame.
        tree = build_tree(seed=12)
        warm_frames(tree)
        tree._mutation_observers.remove(tree.frames.note_mutation)
        tree.digest_epoch(12, {0: 5})
        leaf = tree._leaf_of[0]
        assert tree.frames.cached(leaf) is not None  # stale entry survived
        assert_frames_byte_equal(tree)  # ...but is never served

    def test_wrap_tias_disables_permanently(self):
        tree = build_tree(seed=13)
        warm_frames(tree)
        tree.wrap_tias(lambda tia: tia)
        assert not tree.frames.enabled
        assert len(tree.frames) == 0
        assert tree.frames.frame(tree.root) is None
        rng = random.Random(14)
        query = make_query(rng, tree)
        assert list(knnta_search(tree, query))  # object path still answers

    def test_disabled_store_reprs(self):
        tree = build_tree(n=5, seed=15)
        assert "enabled=True" in repr(tree.frames)
        frame = tree.frames.frame(tree.root)
        assert "entries=" in repr(frame)


class TestBitIdenticalAnswers:
    @pytest.mark.parametrize(
        "aggregate_kind", [AggregateKind.SUM, AggregateKind.MAX]
    )
    def test_search_matches_object_path(self, aggregate_kind):
        tree = build_tree(seed=16, aggregate_kind=aggregate_kind)
        rng = random.Random(17)
        for _ in range(25):
            packed, plain = answers_both_paths(tree, make_query(rng, tree))
            assert packed == plain  # full-tuple equality: ids, scores, order

    def test_browse_matches_object_path(self):
        tree = build_tree(seed=18)
        rng = random.Random(19)
        query = make_query(rng, tree, k=1)
        browse = knnta_browse(tree, query)
        got = [next(browse) for _ in range(40)]
        tree.frames.enabled = False
        try:
            plain_browse = knnta_browse(tree, query)
            expected = [next(plain_browse) for _ in range(40)]
        finally:
            tree.frames.enabled = True
        assert got == expected

    def test_collective_matches_object_path(self):
        tree = build_tree(seed=20)
        rng = random.Random(21)
        queries = [make_query(rng, tree) for _ in range(12)]
        packed = CollectiveProcessor(tree).run(queries)
        tree.frames.enabled = False
        try:
            plain = CollectiveProcessor(tree).run(queries)
        finally:
            tree.frames.enabled = True
        for got, expected in zip(packed, plain):
            assert list(got) == list(expected)

    def test_mutation_stream_stays_bit_identical(self):
        """40 mixed mutations, packed vs object answers after each."""
        tree = build_tree(seed=22)
        rng = random.Random(23)
        next_id = 1000
        next_epoch = 12
        for step in range(40):
            op = rng.choice(["insert", "delete", "digest", "digest"])
            if op == "insert":
                tree.insert_poi(
                    POI(next_id, rng.random() * 100, rng.random() * 100),
                    {e: rng.randrange(1, 6) for e in range(0, 12, 2)},
                )
                next_id += 1
            elif op == "delete":
                candidates = [p for p in tree.poi_ids()]
                tree.delete_poi(rng.choice(candidates))
            else:
                counts = {
                    poi_id: rng.randrange(1, 6)
                    for poi_id in rng.sample(list(tree.poi_ids()), 10)
                }
                tree.digest_epoch(next_epoch, counts)
                next_epoch += 1
            packed, plain = answers_both_paths(tree, make_query(rng, tree))
            assert packed == plain, "diverged at mutation step %d" % step

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        mutations=st.lists(
            st.sampled_from(["insert", "delete", "digest"]), max_size=6
        ),
    )
    def test_property_random_streams(self, seed, mutations):
        rng = random.Random(seed)
        tree = build_tree(n=60, seed=seed)
        next_id, next_epoch = 500, 12
        for op in mutations:
            if op == "insert":
                tree.insert_poi(
                    POI(next_id, rng.random() * 100, rng.random() * 100),
                    {rng.randrange(12): rng.randrange(1, 9)},
                )
                next_id += 1
            elif op == "delete":
                tree.delete_poi(rng.choice(list(tree.poi_ids())))
            else:
                tree.digest_epoch(
                    next_epoch, {rng.choice(list(tree.poi_ids())): 2}
                )
                next_epoch += 1
        assert_frames_byte_equal(tree)
        packed, plain = answers_both_paths(tree, make_query(rng, tree))
        assert packed == plain


class TestFrameStoreBasics:
    def test_frames_rebuild_lazily_after_clear(self):
        tree = build_tree(n=30, seed=24)
        warm_frames(tree)
        tree.frames.clear()
        assert len(tree.frames) == 0
        assert tree.frames.frame(tree.root) is not None
        assert len(tree.frames) == 1

    def test_bulk_load_resets_the_store(self):
        from repro import datasets

        data = datasets.make("NYC", scale=0.02, seed=7)
        tree = TARTree.build(data, bulk=True)
        # build() ends in a consistent state: serving works immediately
        end = tree.current_time
        query = KNNTAQuery((0.4, 0.6), TimeInterval(end - 28, end), k=5)
        packed, plain = answers_both_paths(tree, query)
        assert packed == plain

    def test_store_is_per_tree(self):
        a = build_tree(n=10, seed=25)
        b = build_tree(n=10, seed=26)
        assert isinstance(a.frames, FrameStore)
        assert a.frames is not b.frames
        a.frames.frame(a.root)
        assert len(b.frames) == 0
