"""Collective query processing (Section 7.2)."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.collective import CollectiveProcessor, process_individually
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def build_tree(n=250, seed=0, tia_backend="memory", tia_buffer_slots=10):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        tia_backend=tia_backend,
        tia_buffer_slots=tia_buffer_slots,
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def make_queries(n, seed=0, interval_presets=((0, 12), (3, 9)), k=10):
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        start, end = interval_presets[rng.randrange(len(interval_presets))]
        queries.append(
            KNNTAQuery(
                (rng.random() * 100, rng.random() * 100),
                TimeInterval(start, end),
                k=k,
                alpha0=0.3,
            )
        )
    return queries


def scores(results):
    return [round(r.score, 10) for r in results]


class TestCorrectness:
    def test_matches_individual_results(self):
        tree = build_tree(seed=1)
        queries = make_queries(30, seed=2)
        collective = CollectiveProcessor(tree).run(queries)
        individual = [knnta_search(tree, q) for q in queries]
        for got, expected in zip(collective, individual):
            assert scores(got) == scores(expected)

    def test_single_query_batch(self):
        tree = build_tree(seed=3)
        (result,) = CollectiveProcessor(tree).run(make_queries(1, seed=4))
        assert len(result) == 10

    def test_empty_batch(self):
        tree = build_tree(n=10, seed=5)
        assert CollectiveProcessor(tree).run([]) == []

    def test_empty_tree(self):
        tree = TARTree(
            world=Rect((0.0, 0.0), (1.0, 1.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=1.0,
            tia_backend="memory",
        )
        results = CollectiveProcessor(tree).run(make_queries(3, seed=6))
        assert results == [[], [], []]

    def test_mixed_k_values(self):
        tree = build_tree(seed=7)
        queries = [
            q._replace(k=k) for q, k in zip(make_queries(4, seed=8), (1, 5, 20, 50))
        ]
        results = CollectiveProcessor(tree).run(queries)
        assert [len(r) for r in results] == [1, 5, 20, 50]

    def test_invalid_query_rejected(self):
        tree = build_tree(n=20, seed=9)
        bad = make_queries(1, seed=10)[0]._replace(k=0)
        with pytest.raises(ValueError):
            CollectiveProcessor(tree).run([bad])


class TestSharing:
    def test_shared_accesses_fewer_than_individual(self):
        tree = build_tree(seed=11)
        queries = make_queries(40, seed=12)
        snap = tree.stats.snapshot()
        CollectiveProcessor(tree).run(queries)
        collective_nodes = tree.stats.diff(snap).rtree_nodes
        snap = tree.stats.snapshot()
        process_individually(tree, queries)
        individual_nodes = tree.stats.diff(snap).rtree_nodes
        assert collective_nodes < individual_nodes

    def test_sharing_grows_with_batch_size(self):
        tree = build_tree(seed=13)

        def per_query_nodes(batch_size):
            queries = make_queries(batch_size, seed=14)
            snap = tree.stats.snapshot()
            CollectiveProcessor(tree).run(queries)
            return tree.stats.diff(snap).rtree_nodes / batch_size

        assert per_query_nodes(50) < per_query_nodes(5)

    def test_identical_queries_cost_one_traversal(self):
        tree = build_tree(seed=15)
        query = make_queries(1, seed=16)[0]
        snap = tree.stats.snapshot()
        knnta_search(tree, query)
        single = tree.stats.diff(snap).rtree_nodes
        snap = tree.stats.snapshot()
        CollectiveProcessor(tree).run([query] * 25)
        batch = tree.stats.diff(snap).rtree_nodes
        assert batch == single

    def test_interval_grouping_shares_tia_io(self):
        """Batches over one interval preset do less TIA I/O per query."""
        queries_one = make_queries(30, seed=17, interval_presets=((0, 12),))
        queries_many = make_queries(
            30, seed=17, interval_presets=tuple((i, i + 2) for i in range(10))
        )

        def tia_pages(queries):
            tree = build_tree(seed=18, tia_backend="paged", tia_buffer_slots=0)
            # This test measures the object path's TIA page I/O; the
            # packed frames answer aggregates without any TIA reads.
            tree.frames.disable()
            snap = tree.stats.snapshot()
            CollectiveProcessor(tree).run(queries)
            return tree.stats.diff(snap).tia_pages

        assert tia_pages(queries_one) < tia_pages(queries_many)


class TestProcessIndividually:
    def test_matches_knnta_search(self):
        tree = build_tree(seed=19)
        queries = make_queries(10, seed=20)
        got = process_individually(tree, queries)
        expected = [knnta_search(tree, q) for q in queries]
        for a, b in zip(got, expected):
            assert scores(a) == scores(b)

    def test_unbuffered_tias_cost_more_pages(self):
        queries = make_queries(15, seed=21)

        def pages(slots):
            tree = build_tree(seed=22, tia_backend="paged", tia_buffer_slots=slots)
            tree.frames.disable()  # measuring object-path TIA buffering
            snap = tree.stats.snapshot()
            process_individually(tree, queries)
            return tree.stats.diff(snap).tia_pages

        assert pages(0) >= pages(10)
