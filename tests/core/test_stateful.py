"""Stateful property tests: random operation sequences vs. oracles.

Two hypothesis state machines:

* :class:`TARTreeMachine` interleaves POI insertion, deletion, epoch
  digestion and queries on a TAR-tree, checking every query against a
  brute-force oracle computed from a plain dict model (independent of
  the tree *and* of the sequential-scan implementation) and re-checking
  the full structural invariants after every step.
* :class:`MVBTMachine` drives the multi-version B-tree with mixed
  set/add/raise operations, comparing the current state against a dict
  and randomly checkpointed past versions against remembered snapshots.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import POI, TARTree, TimeInterval
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.mvbt import MVBTTIA
from repro.temporal.tia import MemoryTIA

WORLD = 100.0
EPOCHS = 8

coordinate = st.floats(0.0, WORLD, allow_nan=False)
history = st.dictionaries(
    st.integers(0, EPOCHS - 1), st.integers(1, 9), max_size=4
)


class TARTreeMachine(RuleBasedStateMachine):
    strategy_name = "integral3d"

    @initialize()
    def setup(self):
        self.tree = TARTree(
            world=Rect((0.0, 0.0), (WORLD, WORLD)),
            clock=EpochClock(0.0, 1.0),
            current_time=float(EPOCHS),
            strategy=self.strategy_name,
            node_size=256,  # small nodes force splits early
            tia_backend="memory",
        )
        self.model = {}
        self.next_id = 0

    @rule(x=coordinate, y=coordinate, h=history)
    def insert(self, x, y, h):
        poi_id = self.next_id
        self.next_id += 1
        self.tree.insert_poi(POI(poi_id, x, y), dict(h))
        self.model[poi_id] = ((x, y), dict(h))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        poi_id = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.delete_poi(poi_id)
        del self.model[poi_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), epoch=st.integers(0, EPOCHS - 1), count=st.integers(1, 9))
    def digest(self, data, epoch, count):
        poi_id = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.digest_epoch(epoch, {poi_id: count})
        position, h = self.model[poi_id]
        h[epoch] = h.get(epoch, 0) + count

    @precondition(lambda self: self.model)
    @rule(
        qx=coordinate,
        qy=coordinate,
        k=st.integers(1, 8),
        alpha0=st.floats(0.1, 0.9),
        start=st.integers(0, EPOCHS - 1),
        length=st.integers(1, EPOCHS),
    )
    def query(self, qx, qy, k, alpha0, start, length):
        interval = TimeInterval(float(start), float(min(EPOCHS, start + length)))
        got = knnta_search(
            self.tree,
            KNNTAQuery((qx, qy), interval, k=k, alpha0=alpha0),
        )
        expected = self._oracle((qx, qy), interval, k, alpha0)
        assert [round(r.score, 9) for r in got] == [
            round(score, 9) for score in expected
        ]

    def _oracle(self, point, interval, k, alpha0):
        """Brute-force top-k scores straight from the dict model."""
        first = int(interval.start)
        last = min(EPOCHS - 1, int(interval.end))  # epochs intersecting
        epochs = range(first, last + 1)
        per_epoch_max = {
            e: max(
                (h.get(e, 0) for _, h in self.model.values()), default=0
            )
            for e in epochs
        }
        g_max = sum(per_epoch_max.values()) or 1.0
        d_max = math.sqrt(2) * WORLD
        scores = []
        for (x, y), h in self.model.values():
            distance = math.hypot(x - point[0], y - point[1]) / d_max
            aggregate = sum(h.get(e, 0) for e in epochs) / g_max
            scores.append(alpha0 * distance + (1 - alpha0) * (1 - aggregate))
        scores.sort()
        return scores[:k]

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()
            assert len(self.tree) == len(self.model)


class SpatialTARTreeMachine(TARTreeMachine):
    strategy_name = "spatial"


class AggregateTARTreeMachine(TARTreeMachine):
    strategy_name = "aggregate"


TestTARTreeStateful = TARTreeMachine.TestCase
TestTARTreeStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestSpatialStateful = SpatialTARTreeMachine.TestCase
TestSpatialStateful.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)
TestAggregateStateful = AggregateTARTreeMachine.TestCase
TestAggregateStateful.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)


class MVBTMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.mvbt = MVBTTIA(page_size=96, buffer_slots=2)
        self.model = MemoryTIA()
        self.checkpoints = []  # (version, dict snapshot)

    @rule(epoch=st.integers(0, 60), value=st.integers(0, 9))
    def set(self, epoch, value):
        self.mvbt.set(epoch, value)
        self.model.set(epoch, value)

    @rule(epoch=st.integers(0, 60), delta=st.integers(1, 9))
    def add(self, epoch, delta):
        self.mvbt.add(epoch, delta)
        self.model.add(epoch, delta)

    @rule(epoch=st.integers(0, 60), value=st.integers(1, 20))
    def raise_to(self, epoch, value):
        self.mvbt.raise_to(epoch, value)
        self.model.raise_to(epoch, value)

    @rule()
    def checkpoint(self):
        self.checkpoints.append(
            (self.mvbt.version, dict(self.model.items()))
        )

    @rule(lo=st.integers(0, 60), hi=st.integers(0, 60))
    def compare_ranges(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        assert self.mvbt.range_sum(lo, hi) == self.model.range_sum(lo, hi)
        assert self.mvbt.range_max(lo, hi) == self.model.range_max(lo, hi)

    @invariant()
    def current_state_matches(self):
        if hasattr(self, "mvbt"):
            assert list(self.mvbt.items()) == list(self.model.items())

    @invariant()
    def history_is_preserved(self):
        if hasattr(self, "mvbt"):
            for version, snapshot in self.checkpoints[-3:]:
                assert dict(self.mvbt.items_at(version)) == snapshot


TestMVBTStateful = MVBTMachine.TestCase
TestMVBTStateful.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
