"""Entry grouping strategies (Section 5)."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.grouping import (
    AggregateGrouping,
    Integral3DGrouping,
    SpatialGrouping,
    resolve_strategy,
    tia_manhattan,
)
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import MemoryTIA


def make_tree(strategy):
    return TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        strategy=strategy,
        tia_backend="memory",
    )


class TestResolve:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("spatial", SpatialGrouping),
            ("ind-spa", SpatialGrouping),
            ("aggregate", AggregateGrouping),
            ("IND-AGG", AggregateGrouping),
            ("integral3d", Integral3DGrouping),
            ("TAR", Integral3DGrouping),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(resolve_strategy(name), cls)

    def test_instance_passthrough(self):
        strategy = SpatialGrouping()
        assert resolve_strategy(strategy) is strategy

    def test_unknown(self):
        with pytest.raises(ValueError):
            resolve_strategy("quadtree")

    def test_dims(self):
        assert SpatialGrouping.dims == 2
        assert AggregateGrouping.dims == 2
        assert Integral3DGrouping.dims == 3

    def test_reinsert_flags(self):
        assert SpatialGrouping.uses_reinsert
        assert Integral3DGrouping.uses_reinsert
        assert not AggregateGrouping.uses_reinsert


class TestTiaManhattan:
    def test_identical_is_zero(self):
        a = MemoryTIA()
        a.replace_all({0: 2, 1: 3})
        b = MemoryTIA()
        b.replace_all({0: 2, 1: 3})
        assert tia_manhattan(a, b) == 0

    def test_disjoint_epochs_sum(self):
        a = MemoryTIA()
        a.replace_all({0: 2})
        b = MemoryTIA()
        b.replace_all({5: 3})
        assert tia_manhattan(a, b) == 5

    def test_symmetry(self):
        a = MemoryTIA()
        a.replace_all({0: 2, 3: 7})
        b = MemoryTIA()
        b.replace_all({0: 5, 1: 1})
        assert tia_manhattan(a, b) == tia_manhattan(b, a) == 11


class TestLeafRects:
    def test_spatial_uses_raw_coordinates(self):
        tree = make_tree("spatial")
        rect = tree.strategy.leaf_rect(POI("p", 30, 70), tree)
        assert rect == Rect((30, 70), (30, 70))

    def test_integral3d_normalises_and_appends_z(self):
        tree = make_tree("integral3d")
        tree.insert_poi(POI("hot", 1, 1), {e: 10 for e in range(10)})
        tree.insert_poi(POI("hot2", 50, 25), {e: 5 for e in range(10)})
        leaf = tree._leaf_of["hot2"]
        rect = next(e.rect for e in leaf.entries if e.item == "hot2")
        assert rect.dims == 3
        assert rect.lows[0] == pytest.approx(0.5)
        assert rect.lows[1] == pytest.approx(0.25)
        assert rect.lows[2] == pytest.approx(0.5)  # half the max rate

    def test_integral3d_z_orders_by_rate(self):
        tree = make_tree("integral3d")
        tree.insert_poi(POI("hot", 1, 1), {e: 10 for e in range(10)})
        tree.insert_poi(POI("warm", 2, 2), {e: 5 for e in range(10)})
        tree.insert_poi(POI("cold", 3, 3), {0: 1})
        z = {p: tree.aggregate_coordinate(p) for p in ("hot", "warm", "cold")}
        assert z["hot"] < z["warm"] < z["cold"]


class TestStrategyPlacement:
    def test_aggregate_grouping_collocates_similar_distributions(self):
        """POIs with identical histories share leaves under IND-agg."""
        tree = make_tree("aggregate")
        rng = random.Random(0)
        # Two aggregate profiles, spatially interleaved.
        for i in range(120):
            profile = {0: 50, 1: 50} if i % 2 == 0 else {8: 2}
            tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), profile)
        tree.check_invariants()
        mixed = 0
        for leaf in set(tree._leaf_of.values()):
            kinds = {entry.item % 2 for entry in leaf.entries}
            if len(kinds) > 1:
                mixed += 1
        assert mixed == 0, "IND-agg mixed dissimilar distributions in %d leaves" % mixed

    def test_spatial_grouping_collocates_neighbours(self):
        """Two far-apart spatial clusters never share a leaf under IND-spa."""
        tree = make_tree("spatial")
        rng = random.Random(1)
        for i in range(120):
            if i % 2 == 0:
                x, y = rng.random() * 5, rng.random() * 5
            else:
                x, y = 95 + rng.random() * 5, 95 + rng.random() * 5
            tree.insert_poi(POI(i, x, y), {0: rng.randrange(1, 9)})
        tree.check_invariants()
        for leaf in set(tree._leaf_of.values()):
            kinds = {entry.item % 2 for entry in leaf.entries}
            assert len(kinds) == 1

    def test_integral3d_separates_rate_tiers_within_one_spot(self):
        """Same location, wildly different rates: integral-3D splits them."""
        tree = make_tree("integral3d")
        rng = random.Random(2)
        for i in range(120):
            x, y = 50 + rng.random(), 50 + rng.random()
            history = (
                {e: 20 for e in range(10)} if i % 2 == 0 else {rng.randrange(10): 1}
            )
            tree.insert_poi(POI(i, x, y), history)
        tree.check_invariants()
        mixed = sum(
            1
            for leaf in set(tree._leaf_of.values())
            if len({entry.item % 2 for entry in leaf.entries}) > 1
        )
        assert mixed <= 1  # at most the boundary leaf mixes tiers
