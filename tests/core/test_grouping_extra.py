"""Grouping strategy edge cases: degenerate distributions and geometry."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def make_tree(strategy, node_size=512):
    return TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        strategy=strategy,
        node_size=node_size,
        tia_backend="memory",
    )


@pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
class TestDegenerateDistributions:
    def test_identical_histories_split_legally(self, strategy):
        """All-equal aggregate vectors force tie-breaking in every
        strategy's split; fill invariants must survive."""
        tree = make_tree(strategy)
        rng = random.Random(1)
        for i in range(120):
            tree.insert_poi(
                POI(i, rng.random() * 100, rng.random() * 100), {0: 3, 5: 2}
            )
        tree.check_invariants()

    def test_no_history_at_all(self, strategy):
        """POIs without a single check-in: z degenerates, IND-agg sees
        all-zero vectors; the tree must still build and answer."""
        tree = make_tree(strategy)
        rng = random.Random(2)
        for i in range(120):
            tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100))
        tree.check_invariants()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=10)
        results = knnta_search(tree, query)
        assert len(results) == 10
        # With zero aggregates everywhere the ranking is purely spatial.
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_identical_positions(self, strategy):
        """Co-located POIs (a mall full of venues) split on ties."""
        tree = make_tree(strategy)
        rng = random.Random(3)
        for i in range(100):
            history = {e: rng.randrange(1, 9) for e in range(10)}
            tree.insert_poi(POI(i, 50.0, 50.0), history)
        tree.check_invariants()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=7)
        bfs = [round(r.score, 10) for r in knnta_search(tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(tree, query)]
        assert bfs == scan


class TestIntegral3DGeometry:
    def test_one_hot_poi_owns_z_zero(self):
        tree = make_tree("integral3d")
        tree.insert_poi(POI("whale", 1, 1), {e: 50 for e in range(10)})
        for i in range(50):
            tree.insert_poi(POI(i, 50 + i * 0.5, 50.0), {0: 1})
        assert tree.aggregate_coordinate("whale") == pytest.approx(0.0)
        assert all(
            tree.aggregate_coordinate(i) > 0.95 for i in range(50)
        )

    def test_grouping_rect_is_unit_cube_bounded(self):
        tree = make_tree("integral3d")
        rng = random.Random(4)
        for i in range(150):
            history = {
                e: rng.randrange(1, 20) for e in range(10) if rng.random() < 0.6
            }
            tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
        for leaf in set(tree._leaf_of.values()):
            for entry in leaf.entries:
                assert all(0.0 <= v <= 1.0 for v in entry.rect.lows)
                assert all(0.0 <= v <= 1.0 for v in entry.rect.highs)
