"""Minimum weight adjustment (Section 7.1), including Table 3."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import POI, TARTree, TimeInterval
from repro.core.mwa import (
    MWAResult,
    minimum_weight_adjustment,
    mwa_enumerating,
    mwa_from_pairs,
    mwa_pruning,
    weight_boundary,
)
from repro.core.query import KNNTAQuery
from repro.core.scan import full_ranking
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock

# Table 3: the six POIs of the MWA worked example (alpha0 = 0.5, k = 2).
TABLE_3 = {
    "p1": (0.25, 0.10),
    "p2": (0.10, 0.30),
    "p3": (0.20, 0.35),
    "p4": (0.35, 0.25),
    "p5": (0.025, 0.60),
    "p6": (0.60, 0.05),
}


class TestWeightBoundary:
    def test_paper_gamma_p1_p3(self):
        # "To let f'(p1) > f'(p3), we need alpha0' > 5/6."
        assert weight_boundary(TABLE_3["p1"], TABLE_3["p3"]) == pytest.approx(5 / 6)

    def test_paper_gamma_p1_p5(self):
        assert weight_boundary(TABLE_3["p1"], TABLE_3["p5"]) == pytest.approx(20 / 29)

    def test_paper_gamma_p1_p6(self):
        assert weight_boundary(TABLE_3["p1"], TABLE_3["p6"]) == pytest.approx(1 / 8)

    def test_paper_gamma_p2_p4(self):
        assert weight_boundary(TABLE_3["p2"], TABLE_3["p4"]) == pytest.approx(1 / 6)

    def test_paper_gamma_p2_p5(self):
        assert weight_boundary(TABLE_3["p2"], TABLE_3["p5"]) == pytest.approx(4 / 5)

    def test_paper_gamma_p2_p6(self):
        assert weight_boundary(TABLE_3["p2"], TABLE_3["p6"]) == pytest.approx(1 / 3)

    def test_dominance_gives_none(self):
        assert weight_boundary((0.1, 0.1), (0.2, 0.2)) is None
        assert weight_boundary((0.1, 0.2), (0.1, 0.3)) is None


class TestTable3MWA:
    def test_paper_result(self):
        # "The MWA of alpha0 is either alpha0' < 1/3 or alpha0' > 20/29."
        topk = [TABLE_3["p1"], TABLE_3["p2"]]
        lower = [TABLE_3[p] for p in ("p3", "p4", "p5", "p6")]
        result = mwa_from_pairs(topk, lower, alpha0=0.5)
        assert result.gamma_lower == pytest.approx(1 / 3)
        assert result.gamma_upper == pytest.approx(20 / 29)

    def test_minimum_adjustment_and_nearest(self):
        topk = [TABLE_3["p1"], TABLE_3["p2"]]
        lower = [TABLE_3[p] for p in ("p3", "p4", "p5", "p6")]
        result = mwa_from_pairs(topk, lower, alpha0=0.5)
        assert result.minimum_adjustment == pytest.approx(0.5 - 1 / 3)
        assert result.nearest_weight == pytest.approx(1 / 3)

    def test_crossing_the_boundary_changes_exactly_one_poi(self):
        """Crossing Gamma_u swaps exactly one top-k POI (Section 7.1)."""

        def topk_at(alpha0, k=2):
            scored = sorted(
                TABLE_3, key=lambda p: alpha0 * TABLE_3[p][0] + (1 - alpha0) * TABLE_3[p][1]
            )
            return set(scored[:k])

        before = topk_at(0.5)
        after = topk_at(0.75)  # the paper changes alpha0 to 0.75
        assert before == {"p1", "p2"}
        assert after == {"p2", "p5"}
        assert len(before & after) == 1


class TestResultType:
    def test_immutable_result(self):
        result = MWAResult(0.5, None, None)
        assert result.minimum_adjustment is None
        assert result.nearest_weight is None

    def test_one_sided(self):
        result = MWAResult(0.5, 0.2, None)
        assert result.minimum_adjustment == pytest.approx(0.3)
        assert result.nearest_weight == 0.2


def build_tree(n=200, seed=0, strategy="integral3d"):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        strategy=strategy,
        tia_backend="memory",
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def brute_force_mwa(tree, query):
    ranking = full_ranking(tree, query)
    topk = [r.score_pair for r in ranking[: query.k]]
    lower = [r.score_pair for r in ranking[query.k :]]
    return mwa_from_pairs(topk, lower, query.alpha0)


class TestOnTree:
    @pytest.mark.parametrize("alpha0", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_enumerating_matches_brute_force(self, alpha0):
        tree = build_tree(seed=1)
        query = KNNTAQuery((40.0, 40.0), TimeInterval(0, 12), k=8, alpha0=alpha0)
        expected = brute_force_mwa(tree, query)
        got = mwa_enumerating(tree, query)
        assert got.gamma_lower == pytest.approx(expected.gamma_lower)
        assert got.gamma_upper == pytest.approx(expected.gamma_upper)

    @pytest.mark.parametrize("alpha0", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_pruning_matches_brute_force(self, alpha0):
        tree = build_tree(seed=2)
        query = KNNTAQuery((70.0, 20.0), TimeInterval(0, 12), k=8, alpha0=alpha0)
        expected = brute_force_mwa(tree, query)
        got = mwa_pruning(tree, query)
        assert got.gamma_lower == pytest.approx(expected.gamma_lower)
        assert got.gamma_upper == pytest.approx(expected.gamma_upper)

    @pytest.mark.parametrize("k", [1, 5, 20, 50])
    def test_methods_agree_across_k(self, k):
        tree = build_tree(seed=3)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=k, alpha0=0.3)
        a = mwa_enumerating(tree, query)
        b = mwa_pruning(tree, query)
        assert a.gamma_lower == pytest.approx(b.gamma_lower)
        assert a.gamma_upper == pytest.approx(b.gamma_upper)

    def test_pruning_accesses_fewer_nodes(self):
        tree = build_tree(n=400, seed=4)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=30, alpha0=0.3)
        snap = tree.stats.snapshot()
        mwa_enumerating(tree, query)
        enumerating_nodes = tree.stats.diff(snap).rtree_nodes
        snap = tree.stats.snapshot()
        mwa_pruning(tree, query)
        pruning_nodes = tree.stats.diff(snap).rtree_nodes
        assert pruning_nodes < enumerating_nodes

    def test_dispatch(self):
        tree = build_tree(n=60, seed=5)
        query = KNNTAQuery((10.0, 10.0), TimeInterval(0, 12), k=5)
        a = minimum_weight_adjustment(tree, query, method="pruning")
        b = minimum_weight_adjustment(tree, query, method="enumerating")
        assert a.gamma_upper == pytest.approx(b.gamma_upper)
        with pytest.raises(ValueError):
            minimum_weight_adjustment(tree, query, method="magic")

    def test_adjusted_weight_actually_changes_topk(self):
        """Crossing the suggested boundary changes the top-k set."""
        tree = build_tree(seed=6)
        query = KNNTAQuery((30.0, 60.0), TimeInterval(0, 12), k=10, alpha0=0.5)
        result = mwa_pruning(tree, query)
        baseline = {r.poi_id for r in full_ranking(tree, query)[: query.k]}
        if result.gamma_upper is not None:
            shifted = query._replace(alpha0=min(0.999, result.gamma_upper + 1e-4))
            changed = {r.poi_id for r in full_ranking(tree, shifted)[: query.k]}
            assert changed != baseline
        if result.gamma_lower is not None:
            shifted = query._replace(alpha0=max(0.001, result.gamma_lower - 1e-4))
            changed = {r.poi_id for r in full_ranking(tree, shifted)[: query.k]}
            assert changed != baseline

    def test_weight_inside_the_bounds_preserves_topk(self):
        """Weights strictly between the bounds keep the result set."""
        tree = build_tree(seed=7)
        query = KNNTAQuery((80.0, 80.0), TimeInterval(0, 12), k=10, alpha0=0.4)
        result = mwa_pruning(tree, query)
        baseline = {r.poi_id for r in full_ranking(tree, query)[: query.k]}
        probes = []
        if result.gamma_lower is not None:
            probes.append(result.gamma_lower + 1e-4)
        if result.gamma_upper is not None:
            probes.append(result.gamma_upper - 1e-4)
        for alpha0 in probes:
            same = {
                r.poi_id
                for r in full_ranking(tree, query._replace(alpha0=alpha0))[: query.k]
            }
            assert same == baseline


class TestWeightAdjustmentSequence:
    """The multi-change extension mentioned at the end of Section 7.1."""

    def test_each_boundary_swaps_exactly_one_poi(self):
        from repro.core.mwa import weight_adjustment_sequence

        tree = build_tree(seed=21)
        query = KNNTAQuery((45.0, 55.0), TimeInterval(0, 12), k=10, alpha0=0.4)
        boundaries = weight_adjustment_sequence(tree, query, changes=3)
        assert len(boundaries) == 3
        assert boundaries == sorted(boundaries)
        # Each crossing changes the set by exactly one POI relative to
        # the set just before it (a POI may later re-enter, so changes
        # are not cumulative relative to the original weights).
        previous = {r.poi_id for r in full_ranking(tree, query)[: query.k]}
        for boundary in boundaries:
            shifted = query._replace(alpha0=min(0.999, boundary + 1e-6))
            current = {
                r.poi_id for r in full_ranking(tree, shifted)[: query.k]
            }
            assert len(previous - current) == 1
            assert len(current - previous) == 1
            previous = current

    def test_downward_direction(self):
        from repro.core.mwa import weight_adjustment_sequence

        tree = build_tree(seed=22)
        query = KNNTAQuery((10.0, 80.0), TimeInterval(0, 12), k=10, alpha0=0.6)
        boundaries = weight_adjustment_sequence(tree, query, changes=2, direction="down")
        assert boundaries == sorted(boundaries, reverse=True)
        assert all(b < 0.6 for b in boundaries)

    def test_first_boundary_matches_single_mwa(self):
        from repro.core.mwa import weight_adjustment_sequence

        tree = build_tree(seed=23)
        query = KNNTAQuery((70.0, 30.0), TimeInterval(0, 12), k=5, alpha0=0.3)
        boundaries = weight_adjustment_sequence(tree, query, changes=1)
        single = mwa_pruning(tree, query)
        assert boundaries[0] == pytest.approx(single.gamma_upper)

    def test_invalid_arguments(self):
        from repro.core.mwa import weight_adjustment_sequence

        tree = build_tree(n=30, seed=24)
        query = KNNTAQuery((1.0, 1.0), TimeInterval(0, 12), k=3)
        with pytest.raises(ValueError):
            weight_adjustment_sequence(tree, query, changes=0)
        with pytest.raises(ValueError):
            weight_adjustment_sequence(tree, query, changes=1, direction="sideways")

    def test_stops_when_immutable(self):
        from repro.core.mwa import weight_adjustment_sequence

        # Two POIs, k covering both: no adjustment can change the set.
        tree = TARTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=12.0,
            tia_backend="memory",
        )
        tree.insert_poi(POI("a", 10, 10), {0: 5})
        tree.insert_poi(POI("b", 20, 20), {1: 3})
        query = KNNTAQuery((15.0, 15.0), TimeInterval(0, 12), k=2, alpha0=0.5)
        assert weight_adjustment_sequence(tree, query, changes=4) == []


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 100), st.integers(0, 100)
        ),
        min_size=4,
        max_size=30,
        unique=True,
    ),
    st.integers(1, 3),
)
def test_property_skyline_reduction_is_exact(points, k):
    """The pruning reduction (skylines only) never misses the extremum."""
    pairs = [(Fraction(x, 100), Fraction(y, 100)) for x, y in points]
    alpha0 = Fraction(1, 2)
    ranked = sorted(pairs, key=lambda s: alpha0 * s[0] + (1 - alpha0) * s[1])
    topk, lower = ranked[:k], ranked[k:]
    if not lower:
        return
    expected = mwa_from_pairs(topk, lower, 0.5)

    from repro.skyline.bnl import skyline_of_points

    reduced = mwa_from_pairs(
        skyline_of_points(topk, reverse=True),
        skyline_of_points(lower),
        0.5,
    )
    assert (expected.gamma_lower is None) == (reduced.gamma_lower is None)
    assert (expected.gamma_upper is None) == (reduced.gamma_upper is None)
    if expected.gamma_lower is not None:
        assert reduced.gamma_lower == pytest.approx(expected.gamma_lower)
    if expected.gamma_upper is not None:
        assert reduced.gamma_upper == pytest.approx(expected.gamma_upper)
