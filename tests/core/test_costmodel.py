"""The Section 6 cost model: internal consistency and empirical accuracy."""

import math
import random

import numpy as np
import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.costmodel import CostModel, boundary_corrected_disc_area
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


@pytest.fixture(scope="module")
def model():
    return CostModel(n_pois=2000, beta=2.5, xmin=5, max_aggregate=500, capacity=36)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CostModel(0, 2.5, 5, 100, 36)
        with pytest.raises(ValueError):
            CostModel(100, 1.0, 5, 100, 36)
        with pytest.raises(ValueError):
            CostModel(100, 2.5, 200, 100, 36)
        with pytest.raises(ValueError):
            CostModel(100, 2.5, 0, 100, 36)

    def test_from_aggregates_with_explicit_fit(self):
        rng = np.random.default_rng(0)
        values = np.floor(4.5 * (1 - rng.random(3000)) ** (-1 / 1.5) + 0.5).astype(int)
        model = CostModel.from_aggregates(values, capacity=36, beta=2.5, xmin=5)
        assert model.beta == 2.5
        assert model.xmin == 5
        assert model.max_aggregate == int(values.max())

    def test_from_aggregates_rejects_empty(self):
        with pytest.raises(ValueError):
            CostModel.from_aggregates([0, 0], capacity=36)


class TestLayers:
    def test_probabilities_sum_to_at_most_one(self, model):
        assert model._probabilities.sum() <= 1.0 + 1e-9

    def test_probability_decreases_with_x(self, model):
        assert model.layer_probability(5) > model.layer_probability(50)

    def test_counts_proportional_to_n(self):
        small = CostModel(100, 2.5, 5, 500, 36)
        large = CostModel(1000, 2.5, 5, 500, 36)
        assert large.layer_count(10) == pytest.approx(10 * small.layer_count(10))

    def test_heights(self, model):
        assert model.layer_height(500) == 0.0
        assert model.layer_height(250) == pytest.approx(0.5)
        assert model.layer_height(5) == pytest.approx(0.99)


class TestBoundaryCorrection:
    def test_zero_radius(self):
        assert boundary_corrected_disc_area(0.0) == 0.0

    def test_small_radius_close_to_disc_area(self):
        r = 0.01
        assert boundary_corrected_disc_area(r) == pytest.approx(
            math.pi * r * r, rel=0.05
        )

    def test_large_radius_saturates(self):
        assert boundary_corrected_disc_area(5.0) == 1.0

    def test_monotone(self):
        radii = np.linspace(0, 1.2, 50)
        areas = boundary_corrected_disc_area(radii)
        assert np.all(np.diff(areas) >= -1e-12)


class TestSearchRegion:
    def test_radii_grow_toward_base(self, model):
        radii = model.cross_section_radii(0.2, alpha0=0.3)
        assert radii[-1] >= radii[0]  # layer x_max (height 0) has the base

    def test_apex_cuts_off_high_layers(self, model):
        # hl = f / alpha1 small: top layers (low aggregate) get radius 0.
        radii = model.cross_section_radii(0.05, alpha0=0.5)
        assert radii[0] == 0.0
        assert radii[-1] > 0.0

    def test_expected_pois_monotone_in_f(self, model):
        values = [model.expected_pois_in_region(f, 0.3) for f in (0.05, 0.2, 0.5)]
        assert values == sorted(values)

    def test_estimate_fpk_monotone_in_k(self, model):
        fpks = [model.estimate_fpk(k, 0.3) for k in (1, 5, 10, 50, 100)]
        assert fpks == sorted(fpks)
        assert all(0 < f <= 1 for f in fpks)

    def test_estimate_fpk_inverts_expected_pois(self, model):
        fpk = model.estimate_fpk(25, 0.3)
        assert model.expected_pois_in_region(fpk, 0.3) == pytest.approx(25, rel=1e-3)

    def test_estimate_fpk_rejects_bad_k(self, model):
        with pytest.raises(ValueError):
            model.estimate_fpk(0, 0.3)


class TestBands:
    def test_bands_partition_all_layers(self, model):
        bands = model.bands()
        covered = []
        for start, end, population, extent in bands:
            covered.extend(range(start, end + 1))
            assert population > 0
            assert 0 < extent < 1
        assert covered == list(range(len(model._layers)))

    def test_top_bands_have_smaller_extents(self, model):
        # Figure 4: nodes are small among the (dense) higher layers.
        bands = model.bands()
        assert len(bands) >= 2
        assert bands[0][3] <= bands[-1][3]


class TestNodeAccesses:
    def test_monotone_in_k(self, model):
        accesses = [model.estimate_node_accesses(k=k, alpha0=0.3) for k in (1, 10, 100)]
        assert accesses == sorted(accesses)

    def test_positive_and_bounded(self, model):
        na = model.estimate_node_accesses(k=10, alpha0=0.3)
        total_leaves = model.n_pois / model.fanout
        assert 0 < na <= total_leaves

    def test_requires_k_or_fpk(self, model):
        with pytest.raises(ValueError):
            model.estimate_node_accesses()

    def test_explicit_fpk(self, model):
        na = model.estimate_node_accesses(fpk=0.3, alpha0=0.3)
        assert na > 0


class TestEmpiricalAccuracy:
    """The model should track measurements on power-law data (Figure 6)."""

    @pytest.fixture(scope="class")
    def measured_setup(self):
        rng = np.random.default_rng(42)
        n = 1500
        xmin, beta = 4, 2.4
        aggregates = np.floor(
            (xmin - 0.5) * (1 - rng.random(n)) ** (-1 / (beta - 1)) + 0.5
        ).astype(int)
        aggregates = np.minimum(aggregates, 10000)
        tree = TARTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=1.0,
            tia_backend="memory",
        )
        py_rng = random.Random(7)
        for i in range(n):
            tree.insert_poi(
                POI(i, py_rng.random() * 100, py_rng.random() * 100),
                {0: int(aggregates[i])},
            )
        model = CostModel(
            n_pois=n,
            beta=beta,
            xmin=xmin,
            max_aggregate=int(aggregates.max()),
            capacity=tree.capacity,
        )
        queries = [
            KNNTAQuery(
                (py_rng.random() * 100, py_rng.random() * 100),
                TimeInterval(0, 1),
                k=10,
                alpha0=0.3,
            )
            for _ in range(60)
        ]
        return tree, model, queries

    def test_fpk_estimate_tracks_measured(self, measured_setup):
        tree, model, queries = measured_setup
        measured = []
        for query in queries:
            results = knnta_search(tree, query)
            measured.append(results[-1].score)
        mean_measured = sum(measured) / len(measured)
        estimated = model.estimate_fpk(10, 0.3)
        assert estimated == pytest.approx(mean_measured, rel=0.5)

    def test_leaf_access_estimate_tracks_measured(self, measured_setup):
        tree, model, queries = measured_setup
        leaf_counts = []
        for query in queries:
            snap = tree.stats.snapshot()
            knnta_search(tree, query)
            leaf_counts.append(tree.stats.diff(snap).rtree_leaf)
        mean_measured = sum(leaf_counts) / len(leaf_counts)
        estimated = model.estimate_node_accesses(k=10, alpha0=0.3)
        # Same order of magnitude (Figure 6's bars); the model's uniform
        # cubic-node assumptions leave a small constant-factor gap on a
        # 1,500-POI tree.
        assert mean_measured / 4 <= estimated <= mean_measured * 4
        assert estimated > 1

    def test_access_estimate_trend_matches_measured_across_k(self, measured_setup):
        tree, model, queries = measured_setup

        def measured_mean(k):
            counts = []
            for query in queries[:30]:
                snap = tree.stats.snapshot()
                knnta_search(tree, query._replace(k=k))
                counts.append(tree.stats.diff(snap).rtree_leaf)
            return sum(counts) / len(counts)

        measured = [measured_mean(k) for k in (1, 10, 100)]
        estimated = [model.estimate_node_accesses(k=k, alpha0=0.3) for k in (1, 10, 100)]
        assert measured == sorted(measured)
        assert estimated == sorted(estimated)
        # Both grow strongly with k, and the estimate stays within the
        # same order of magnitude at every k.
        assert estimated[-1] / estimated[0] > 3
        assert measured[-1] / measured[0] > 3
        for est, meas in zip(estimated, measured):
            assert meas / 5 <= est <= meas * 5
