"""Systematic compatibility matrix.

Every combination of grouping strategy, TIA backend, interval semantics,
aggregate kind and clock flavour must (a) build a structurally valid
tree and (b) answer kNNTA queries identically to the sequential scan.
This is the guard rail for feature interactions that no single-feature
test exercises.
"""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock
from repro.temporal.tia import AggregateKind, IntervalSemantics

STRATEGIES = ("integral3d", "spatial", "aggregate")
BACKENDS = ("memory", "paged", "mvbt")
KINDS = (AggregateKind.COUNT, AggregateKind.MAX)
SEMANTICS = (IntervalSemantics.INTERSECTS, IntervalSemantics.CONTAINED)


def build(strategy, backend, kind, clock):
    rng = random.Random(77)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=clock,
        current_time=12.0,
        strategy=strategy,
        tia_backend=backend,
        aggregate_kind=kind,
        node_size=512,
    )
    for i in range(90):
        history = {
            e: rng.randrange(1, 9) for e in range(8) if rng.random() < 0.5
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def queries():
    rng = random.Random(5)
    out = []
    for semantics in SEMANTICS:
        out.append(
            KNNTAQuery(
                (rng.random() * 100, rng.random() * 100),
                TimeInterval(1.0, 9.5),
                k=8,
                alpha0=rng.choice([0.2, 0.5, 0.8]),
                semantics=semantics,
            )
        )
    return out


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
def test_matrix_uniform_clock(strategy, backend, kind):
    tree = build(strategy, backend, kind, EpochClock(0.0, 1.0))
    tree.check_invariants()
    for query in queries():
        bfs = [round(r.score, 9) for r in knnta_search(tree, query)]
        scan = [round(r.score, 9) for r in sequential_scan(tree, query)]
        assert bfs == scan, (strategy, backend, kind, query.semantics)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
def test_matrix_varied_clock(strategy, kind):
    clock = VariedEpochClock.exponential(0.0, 0.5, count=8, factor=1.5)
    tree = build(strategy, "memory", kind, clock)
    tree.check_invariants()
    for query in queries():
        bfs = [round(r.score, 9) for r in knnta_search(tree, query)]
        scan = [round(r.score, 9) for r in sequential_scan(tree, query)]
        assert bfs == scan, (strategy, kind, query.semantics)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matrix_digestion_then_delete(backend):
    """Mixed maintenance on every backend keeps the scan equivalence."""
    tree = build("integral3d", backend, AggregateKind.COUNT, EpochClock(0.0, 1.0))
    rng = random.Random(6)
    tree.digest_epoch(3, {i: rng.randrange(1, 5) for i in range(0, 90, 3)})
    for i in range(0, 90, 9):
        assert tree.delete_poi(i)
    tree.check_invariants()
    query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=10)
    bfs = [round(r.score, 9) for r in knnta_search(tree, query)]
    scan = [round(r.score, 9) for r in sequential_scan(tree, query)]
    assert bfs == scan
