"""The sequential-scan baseline and full ranking."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.query import KNNTAQuery, Normalizer
from repro.core.scan import full_ranking, sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def build_tree(n=60, seed=0):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        tia_backend="memory",
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(10) if rng.random() < 0.5
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


class TestSequentialScan:
    def test_returns_k_results_sorted(self):
        tree = build_tree()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=10)
        results = sequential_scan(tree, query)
        assert len(results) == 10
        assert [r.score for r in results] == sorted(r.score for r in results)

    def test_k_exceeding_population(self):
        tree = build_tree(n=7)
        query = KNNTAQuery((1.0, 1.0), TimeInterval(0, 10), k=100)
        assert len(sequential_scan(tree, query)) == 7

    def test_prefix_stability(self):
        """top-k is a prefix of top-(k+m) for the same query."""
        tree = build_tree(seed=1)
        query = KNNTAQuery((30.0, 70.0), TimeInterval(0, 10), k=5)
        small = sequential_scan(tree, query)
        large = sequential_scan(tree, query._replace(k=15))
        assert [r.poi_id for r in small] == [r.poi_id for r in large[:5]]

    def test_empty_tree(self):
        tree = TARTree(
            world=Rect((0.0, 0.0), (1.0, 1.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=1.0,
            tia_backend="memory",
        )
        query = KNNTAQuery((0.5, 0.5), TimeInterval(0, 1), k=3)
        assert sequential_scan(tree, query) == []

    def test_explicit_normalizer_respected(self):
        tree = build_tree(seed=2)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=5)
        doubled = Normalizer(2 * tree.world.diagonal(), 1000.0)
        default_scores = [r.score for r in sequential_scan(tree, query)]
        custom_scores = [r.score for r in sequential_scan(tree, query, doubled)]
        assert default_scores != custom_scores

    def test_invalid_query_rejected(self):
        tree = build_tree(n=5)
        with pytest.raises(ValueError):
            sequential_scan(tree, KNNTAQuery((0, 0), TimeInterval(0, 1), k=0))


class TestFullRanking:
    def test_ranks_everything(self):
        tree = build_tree(seed=3)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=1)
        ranking = full_ranking(tree, query)
        assert len(ranking) == len(tree)
        assert [r.score for r in ranking] == sorted(r.score for r in ranking)
        assert len({r.poi_id for r in ranking}) == len(tree)

    def test_agrees_with_scan_prefix(self):
        tree = build_tree(seed=4)
        query = KNNTAQuery((10.0, 90.0), TimeInterval(2, 8), k=12)
        ranking = full_ranking(tree, query)
        scan = sequential_scan(tree, query)
        assert [round(r.score, 12) for r in ranking[:12]] == [
            round(r.score, 12) for r in scan
        ]

    def test_component_identity(self):
        tree = build_tree(seed=5)
        query = KNNTAQuery((42.0, 24.0), TimeInterval(0, 10), k=1, alpha0=0.6)
        for result in full_ranking(tree, query):
            assert result.score == pytest.approx(
                0.6 * result.distance + 0.4 * (1 - result.aggregate)
            )
