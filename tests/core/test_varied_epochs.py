"""TAR-tree over varied-length epochs.

Section 2 argues the aRB-tree and sketch index "cannot be adapted to
process the kNNTA query when the epochs are of varied lengths, since the
B-tree cannot index time intervals".  The TIA indexes whole epochs, so
the TAR-tree handles exponential epoch schedules ("one hour, two hours,
four hours, eight hours and so on") without special cases — these tests
exercise that end to end.
"""

import random

import pytest

from repro import POI, TARTree, TimeInterval, datasets
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import VariedEpochClock


@pytest.fixture(scope="module")
def exponential_clock():
    # Epochs of 1, 2, 4, 8, 16, 32 days, then the open tail.
    return VariedEpochClock.exponential(0.0, 1.0, count=6, factor=2.0)


@pytest.fixture(scope="module")
def varied_tree(exponential_clock):
    rng = random.Random(31)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=exponential_clock,
        current_time=63.0,
        tia_backend="memory",
    )
    for i in range(250):
        history = {
            e: rng.randrange(1, 9) for e in range(7) if rng.random() < 0.5
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    tree.check_invariants()
    return tree


class TestVariedEpochTree:
    @pytest.mark.parametrize(
        "interval", [(0.0, 63.0), (0.5, 2.5), (3.0, 30.0), (40.0, 63.0)]
    )
    def test_bfs_matches_scan(self, varied_tree, interval):
        query = KNNTAQuery(
            (50.0, 50.0), TimeInterval(*interval), k=10, alpha0=0.3
        )
        bfs = [round(r.score, 10) for r in knnta_search(varied_tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(varied_tree, query)]
        assert bfs == scan

    def test_contained_semantics(self, varied_tree):
        from repro.temporal.tia import IntervalSemantics

        query = KNNTAQuery(
            (20.0, 80.0),
            TimeInterval(0.5, 20.0),
            k=8,
            semantics=IntervalSemantics.CONTAINED,
        )
        bfs = [round(r.score, 10) for r in knnta_search(varied_tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(varied_tree, query)]
        assert bfs == scan

    def test_short_interval_hits_short_epochs_only(self, exponential_clock):
        # A one-day query at the start touches only the 1-day epoch; the
        # same length at the end falls inside one long epoch.
        assert list(exponential_clock.epochs_intersecting(TimeInterval(0.0, 0.9))) == [0]
        late = list(exponential_clock.epochs_intersecting(TimeInterval(40.0, 41.0)))
        assert late == [5]

    def test_digest_into_open_tail_epoch(self, exponential_clock):
        tree = TARTree(
            world=Rect((0.0, 0.0), (10.0, 10.0)),
            clock=exponential_clock,
            current_time=63.0,
            tia_backend="memory",
        )
        tree.insert_poi(POI("a", 5, 5))
        tail_epoch = exponential_clock.epoch_of(100.0)
        tree.digest_epoch(tail_epoch, {"a": 4})
        assert tree.poi_tia("a").get(tail_epoch) == 4
        # The open tail has te = inf, so current_time must not explode.
        assert tree.current_time == 63.0
        query = KNNTAQuery((5.0, 5.0), TimeInterval(50.0, 200.0), k=1)
        results = knnta_search(tree, query)
        assert results[0].poi_id == "a"
        assert results[0].aggregate == 1.0  # the only POI holds the max

    def test_records_expose_interval_bounds(self, varied_tree, exponential_clock):
        poi_id = next(iter(varied_tree.poi_ids()))
        records = varied_tree.poi_tia(poi_id).records(exponential_clock)
        for record in records:
            assert record.te > record.ts
            assert record.agg > 0

    def test_dataset_build_with_varied_clock(self):
        data = datasets.make("LA", scale=0.02, seed=8)
        clock = VariedEpochClock.exponential(data.t0, 7.0, count=7, factor=2.0)
        tree = TARTree.build(data, clock=clock)
        tree.check_invariants()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(data.t0, data.tc), k=10)
        bfs = [round(r.score, 10) for r in knnta_search(tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(tree, query)]
        assert bfs == scan
