"""kNNTA query processing: BFS correctness against the scan ground truth."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import POI, TARTree, TimeInterval
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import full_ranking, sequential_scan
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import IntervalSemantics


def build_tree(pois, strategy="integral3d", epochs=12):
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=float(epochs),
        strategy=strategy,
        tia_backend="memory",
    )
    for poi_id, x, y, history in pois:
        tree.insert_poi(POI(poi_id, x, y), history)
    return tree


def random_pois(n, seed, epochs=12):
    rng = random.Random(seed)
    return [
        (
            i,
            rng.random() * 100,
            rng.random() * 100,
            {
                e: rng.randrange(1, 8)
                for e in range(epochs)
                if rng.random() < 0.4
            },
        )
        for i in range(n)
    ]


def scores(results):
    return [round(r.score, 10) for r in results]


class TestAgainstScan:
    @pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
    @pytest.mark.parametrize("alpha0", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_matches_scan_across_weights(self, strategy, alpha0):
        tree = build_tree(random_pois(250, seed=1), strategy)
        query = KNNTAQuery((40.0, 60.0), TimeInterval(2, 9), k=15, alpha0=alpha0)
        assert scores(knnta_search(tree, query)) == scores(
            sequential_scan(tree, query)
        )

    @pytest.mark.parametrize("k", [1, 5, 10, 50, 100])
    def test_matches_scan_across_k(self, k):
        tree = build_tree(random_pois(250, seed=2))
        query = KNNTAQuery((10.0, 10.0), TimeInterval(0, 12), k=k)
        assert scores(knnta_search(tree, query)) == scores(
            sequential_scan(tree, query)
        )

    def test_contained_semantics(self):
        tree = build_tree(random_pois(200, seed=3))
        query = KNNTAQuery(
            (50.0, 50.0),
            TimeInterval(2.5, 9.5),
            k=10,
            semantics=IntervalSemantics.CONTAINED,
        )
        assert scores(knnta_search(tree, query)) == scores(
            sequential_scan(tree, query)
        )

    def test_exact_normalizer(self):
        tree = build_tree(random_pois(200, seed=4))
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=10)
        normalizer = tree.normalizer(query.interval, exact=True)
        bfs = knnta_search(tree, query, normalizer=normalizer)
        scan = sequential_scan(tree, query, normalizer=normalizer)
        assert scores(bfs) == scores(scan)
        # With the exact normaliser the best aggregate reaches exactly 1.
        assert max(r.aggregate for r in full_ranking(tree, query, normalizer)) == 1.0


class TestResultShape:
    def test_scores_non_decreasing(self):
        tree = build_tree(random_pois(300, seed=5))
        query = KNNTAQuery((30.0, 30.0), TimeInterval(0, 12), k=40)
        results = knnta_search(tree, query)
        values = [r.score for r in results]
        assert values == sorted(values)

    def test_k_capped_by_size(self):
        tree = build_tree(random_pois(7, seed=6))
        query = KNNTAQuery((1.0, 1.0), TimeInterval(0, 12), k=99)
        assert len(knnta_search(tree, query)) == 7

    def test_unique_results(self):
        tree = build_tree(random_pois(120, seed=7))
        query = KNNTAQuery((1.0, 1.0), TimeInterval(0, 12), k=50)
        ids = [r.poi_id for r in knnta_search(tree, query)]
        assert len(ids) == len(set(ids))

    def test_result_components_consistent(self):
        tree = build_tree(random_pois(120, seed=8))
        query = KNNTAQuery((25.0, 75.0), TimeInterval(3, 8), k=20, alpha0=0.4)
        for r in knnta_search(tree, query):
            assert r.score == pytest.approx(
                0.4 * r.distance + 0.6 * (1 - r.aggregate)
            )
            assert 0 <= r.distance <= 1
            assert 0 <= r.aggregate <= 1

    def test_invalid_parameters(self):
        tree = build_tree(random_pois(10, seed=9))
        with pytest.raises(ValueError):
            knnta_search(tree, KNNTAQuery((0, 0), TimeInterval(0, 1), k=0))
        with pytest.raises(ValueError):
            knnta_search(
                tree, KNNTAQuery((0, 0), TimeInterval(0, 1), k=1, alpha0=0.0)
            )
        with pytest.raises(ValueError):
            knnta_search(
                tree, KNNTAQuery((0, 0), TimeInterval(0, 1), k=1, alpha0=1.0)
            )


class TestNodeAccessAccounting:
    def test_counts_accumulate_per_query(self):
        tree = build_tree(random_pois(300, seed=10))
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=10)
        snap = tree.stats.snapshot()
        knnta_search(tree, query)
        delta = tree.stats.diff(snap)
        assert delta.rtree_nodes >= 1
        assert delta.rtree_nodes <= tree.node_count()

    def test_larger_k_accesses_at_least_as_many_nodes(self):
        tree = build_tree(random_pois(400, seed=11))
        query_point = (50.0, 50.0)
        interval = TimeInterval(0, 12)

        def nodes_for(k):
            snap = tree.stats.snapshot()
            knnta_search(tree, KNNTAQuery(query_point, interval, k=k))
            return tree.stats.diff(snap).rtree_nodes

        assert nodes_for(1) <= nodes_for(20) <= nodes_for(100)

    def test_scan_uses_no_rtree_nodes(self):
        tree = build_tree(random_pois(100, seed=12))
        snap = tree.stats.snapshot()
        sequential_scan(tree, KNNTAQuery((5.0, 5.0), TimeInterval(0, 12), k=5))
        assert tree.stats.diff(snap).rtree_nodes == 0


class TestAcrossStrategiesAgreement:
    def test_all_strategies_return_identical_scores(self):
        pois = random_pois(300, seed=13)
        queries = [
            KNNTAQuery((20.0, 80.0), TimeInterval(1, 6), k=10, alpha0=0.3),
            KNNTAQuery((90.0, 10.0), TimeInterval(0, 12), k=25, alpha0=0.7),
        ]
        trees = {
            s: build_tree(pois, s) for s in ("integral3d", "spatial", "aggregate")
        }
        for query in queries:
            per_strategy = {
                name: scores(knnta_search(tree, query))
                for name, tree in trees.items()
            }
            reference = per_strategy.pop("integral3d")
            for got in per_strategy.values():
                assert got == reference


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.dictionaries(st.integers(0, 11), st.integers(1, 9), max_size=6),
        ),
        min_size=1,
        max_size=80,
    ),
    st.tuples(
        st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
    ),
    st.integers(1, 20),
    st.floats(0.05, 0.95),
    st.sampled_from(["integral3d", "spatial", "aggregate"]),
)
def test_property_bfs_equals_scan(pois, point, k, alpha0, strategy):
    tree = build_tree(
        [(i, x, y, h) for i, (x, y, h) in enumerate(pois)], strategy
    )
    query = KNNTAQuery(point, TimeInterval(0, 12), k=k, alpha0=alpha0)
    assert scores(knnta_search(tree, query)) == scores(sequential_scan(tree, query))
