"""Additional collective-processing coverage: greedy order, edge shapes."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.collective import CollectiveProcessor, process_individually
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock
from repro.temporal.tia import IntervalSemantics


def build_tree(n=200, seed=0, node_size=512):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        node_size=node_size,
        tia_backend="memory",
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def scores(results):
    return [round(r.score, 10) for r in results]


class TestBatchShapes:
    def test_batch_with_k_exceeding_tree_size(self):
        tree = build_tree(n=20, seed=1)
        queries = [
            KNNTAQuery((10.0 * i, 10.0 * i), TimeInterval(0, 12), k=500)
            for i in range(5)
        ]
        results = CollectiveProcessor(tree).run(queries)
        for per_query in results:
            assert len(per_query) == 20

    def test_mixed_semantics_grouped_separately(self):
        tree = build_tree(seed=2)
        base = KNNTAQuery((40.0, 40.0), TimeInterval(2.2, 9.7), k=10)
        queries = [
            base,
            base._replace(semantics=IntervalSemantics.CONTAINED),
            base,
        ]
        collective = CollectiveProcessor(tree).run(queries)
        individual = [knnta_search(tree, q) for q in queries]
        for got, expected in zip(collective, individual):
            assert scores(got) == scores(expected)
        # INTERSECTS and CONTAINED genuinely disagree on this interval.
        assert scores(collective[0]) != scores(collective[1])

    def test_duplicate_query_objects_share_everything(self):
        tree = build_tree(seed=3)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=10)
        snap = tree.stats.snapshot()
        results = CollectiveProcessor(tree).run([query] * 100)
        nodes = tree.stats.diff(snap).rtree_nodes
        assert len(results) == 100
        assert all(scores(r) == scores(results[0]) for r in results)
        snap = tree.stats.snapshot()
        knnta_search(tree, query)
        single = tree.stats.diff(snap).rtree_nodes
        assert nodes == single

    def test_heterogeneous_alpha_same_interval_share_aggregates(self):
        """Different weights over one interval still share TIA work."""
        tree = TARTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=12.0,
            node_size=512,
            tia_backend="paged",
            tia_buffer_slots=0,
        )
        rng = random.Random(4)
        for i in range(200):
            history = {
                e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
            }
            tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
        interval = TimeInterval(0, 12)
        queries = [
            KNNTAQuery((50.0, 50.0), interval, k=10, alpha0=a)
            for a in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        # Comparing object-path TIA page costs; frames would zero both.
        tree.frames.disable()
        snap = tree.stats.snapshot()
        collective = CollectiveProcessor(tree).run(queries)
        shared_pages = tree.stats.diff(snap).tia_pages
        snap = tree.stats.snapshot()
        individual = process_individually(tree, queries)
        individual_pages = tree.stats.diff(snap).tia_pages
        for got, expected in zip(collective, individual):
            assert scores(got) == scores(expected)
        assert shared_pages < individual_pages

    def test_greedy_never_starves_a_lonely_query(self):
        """A query demanding an unpopular corner still completes."""
        tree = build_tree(seed=5)
        popular = [
            KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=5) for _ in range(30)
        ]
        lonely = KNNTAQuery((0.5, 99.5), TimeInterval(0, 12), k=5, alpha0=0.95)
        results = CollectiveProcessor(tree).run(popular + [lonely])
        assert len(results[-1]) == 5
        assert scores(results[-1]) == scores(knnta_search(tree, lonely))
