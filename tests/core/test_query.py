"""Query/result value types and the normaliser."""

import pytest

from repro.core.query import (
    Answer,
    KNNTAQuery,
    Normalizer,
    QueryResult,
    RankedAnswer,
)
from repro.temporal.epochs import TimeInterval
from repro.temporal.tia import IntervalSemantics


class TestKNNTAQuery:
    def test_defaults(self):
        query = KNNTAQuery((1.0, 2.0), TimeInterval(0, 7))
        assert query.k == 10
        assert query.alpha0 == 0.3
        assert query.alpha1 == pytest.approx(0.7)
        assert query.semantics is IntervalSemantics.INTERSECTS

    def test_alpha1_complements_alpha0(self):
        query = KNNTAQuery((0, 0), TimeInterval(0, 1), alpha0=0.25)
        assert query.alpha1 == 0.75

    def test_validate_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNTAQuery((0, 0), TimeInterval(0, 1), k=0).validate()

    @pytest.mark.parametrize("alpha0", [0.0, 1.0, -0.2, 1.5])
    def test_validate_rejects_degenerate_weights(self, alpha0):
        with pytest.raises(ValueError):
            KNNTAQuery((0, 0), TimeInterval(0, 1), alpha0=alpha0).validate()

    def test_validate_accepts_paper_defaults(self):
        KNNTAQuery((0, 0), TimeInterval(0, 1), k=10, alpha0=0.3).validate()

    def test_hashable_for_grouping(self):
        a = KNNTAQuery((1.0, 2.0), TimeInterval(0, 7), 10, 0.3)
        b = KNNTAQuery((1.0, 2.0), TimeInterval(0, 7), 10, 0.3)
        assert a == b
        assert hash(a) == hash(b)


class TestQueryResult:
    def test_score_pair(self):
        result = QueryResult("p", 0.5, 0.2, 0.75)
        assert result.score_pair == (0.2, 0.25)

    def test_fields(self):
        result = QueryResult("p", 0.5, 0.2, 0.75)
        assert result.poi_id == "p"
        assert result.score == 0.5


class TestNormalizer:
    def test_create_guards_against_zero(self):
        normalizer = Normalizer.create(0.0, 0)
        assert normalizer.d_max == 1.0
        assert normalizer.g_max == 1.0

    def test_score_matches_equation_1(self):
        normalizer = Normalizer(10.0, 20.0)
        # f(p) = 0.3 * (5/10) + 0.7 * (1 - 10/20)
        assert normalizer.score(0.3, 5.0, 10.0) == pytest.approx(
            0.3 * 0.5 + 0.7 * 0.5
        )

    def test_components(self):
        normalizer = Normalizer(10.0, 20.0)
        assert normalizer.components(5.0, 10.0) == (0.5, 0.5)

    def test_zero_weight_on_aggregate_reduces_to_distance(self):
        normalizer = Normalizer(2.0, 4.0)
        almost_one = 1.0 - 1e-12
        assert normalizer.score(almost_one, 1.0, 0.0) == pytest.approx(0.5, abs=1e-6)


class TestAnswerProtocol:
    def rows(self):
        return [QueryResult("p", 0.5, 0.2, 0.75), QueryResult("q", 0.6, 0.4, 0.5)]

    def test_ranked_answer_is_the_list(self):
        rows = self.rows()
        answer = RankedAnswer(rows)
        assert answer == rows  # plain-list equality keeps working
        assert answer[0] is rows[0]
        first, second = answer  # destructuring keeps working
        assert (first, second) == tuple(rows)
        assert answer.rows is answer

    def test_ranked_answer_protocol_attrs(self):
        answer = RankedAnswer(self.rows())
        assert answer.exact is True
        assert answer.coverage == 1.0
        assert answer.score_bound is None
        assert answer.degraded is False
        assert answer.missed_shards == ()
        assert isinstance(answer, Answer)

    def test_robust_answer_satisfies_protocol(self):
        from repro.reliability.recovery import RobustAnswer

        answer = RobustAnswer(self.rows(), used_fallback=True, reason="x")
        assert isinstance(answer, Answer)
        assert answer.exact is True  # the fallback is exact, just slower
        assert answer.coverage == 1.0
        assert answer.score_bound is None
        assert answer.rows == self.rows()

    def test_degraded_answer_satisfies_protocol(self):
        from repro.cluster.resilience import DegradedAnswer

        answer = DegradedAnswer(self.rows(), (2,), 0.75, 0.42)
        assert isinstance(answer, Answer)
        assert answer.exact is False
        assert answer.coverage == 0.75
        assert answer.score_bound == 0.42
        assert answer.rows == self.rows()
        assert list(answer) == self.rows()
