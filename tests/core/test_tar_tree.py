"""TAR-tree structure, maintenance and invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KNNTAQuery, POI, TARTree, TimeInterval
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def make_tree(strategy="integral3d", capacity_node_size=1024, **kwargs):
    return TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=10.0,
        strategy=strategy,
        node_size=capacity_node_size,
        tia_backend="memory",
        **kwargs,
    )


def random_pois(n, seed=0, epochs=10, max_rate=5):
    rng = random.Random(seed)
    pois = []
    for i in range(n):
        history = {
            e: rng.randrange(0, max_rate)
            for e in range(epochs)
            if rng.random() < 0.5
        }
        history = {e: v for e, v in history.items() if v > 0}
        pois.append((POI(i, rng.random() * 100, rng.random() * 100), history))
    return pois


class TestBasicStructure:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.query(KNNTAQuery((1, 1), TimeInterval(0, 5), k=3)) == []

    def test_capacity_from_node_size_and_strategy_dims(self):
        assert make_tree("integral3d").capacity == 36
        assert make_tree("spatial").capacity == 50
        assert make_tree("aggregate").capacity == 50

    def test_single_insert(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 5, 5), {0: 3})
        assert len(tree) == 1
        assert "a" in tree
        assert tree.poi("a").point == (5.0, 5.0)
        assert tree.poi_tia("a").get(0) == 3
        tree.check_invariants()

    def test_duplicate_id_rejected(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 5, 5))
        with pytest.raises(ValueError):
            tree.insert_poi(POI("a", 6, 6))

    def test_out_of_world_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.insert_poi(POI("a", 500, 5))

    def test_non_2d_world_rejected(self):
        with pytest.raises(ValueError):
            TARTree(
                world=Rect((0, 0, 0), (1, 1, 1)),
                clock=EpochClock(0.0, 1.0),
                current_time=1.0,
            )

    @pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
    def test_many_inserts_keep_invariants(self, strategy):
        tree = make_tree(strategy)
        for poi, history in random_pois(300, seed=1):
            tree.insert_poi(poi, history)
        assert len(tree) == 300
        assert tree.height >= 2
        tree.check_invariants()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_tree("bogus")

    @pytest.mark.parametrize("backend", ["memory", "paged", "mvbt"])
    def test_every_tia_backend_supported(self, backend):
        from repro.core.knnta import knnta_search
        from repro.core.query import KNNTAQuery
        from repro.core.scan import sequential_scan

        tree = TARTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=10.0,
            tia_backend=backend,
        )
        for poi, history in random_pois(120, seed=17):
            tree.insert_poi(poi, history)
        tree.check_invariants()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 10), k=10)
        bfs = [round(r.score, 10) for r in knnta_search(tree, query)]
        scan = [round(r.score, 10) for r in sequential_scan(tree, query)]
        assert bfs == scan


class TestDeletion:
    @pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
    def test_delete_half(self, strategy):
        tree = make_tree(strategy)
        pois = random_pois(200, seed=2)
        for poi, history in pois:
            tree.insert_poi(poi, history)
        for poi, _ in pois[::2]:
            assert tree.delete_poi(poi.poi_id)
        assert len(tree) == 100
        tree.check_invariants()

    def test_delete_missing(self):
        tree = make_tree()
        assert tree.delete_poi("ghost") is False

    def test_delete_all_then_reinsert(self):
        tree = make_tree()
        pois = random_pois(80, seed=3)
        for poi, history in pois:
            tree.insert_poi(poi, history)
        for poi, _ in pois:
            assert tree.delete_poi(poi.poi_id)
        assert len(tree) == 0
        tree.insert_poi(POI("fresh", 1, 1), {0: 1})
        tree.check_invariants()

    def test_delete_refreshes_global_maxima(self):
        tree = make_tree()
        tree.insert_poi(POI("big", 1, 1), {0: 100})
        tree.insert_poi(POI("small", 2, 2), {0: 3})
        assert tree.global_epoch_max() == {0: 100}
        tree.delete_poi("big")
        assert tree.global_epoch_max() == {0: 3}


class TestCheckinDigestion:
    def test_digest_updates_leaf_tia(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 5, 5))
        tree.digest_epoch(0, {"a": 4})
        tree.digest_epoch(0, {"a": 2})
        assert tree.poi_tia("a").get(0) == 6
        tree.check_invariants()

    def test_digest_updates_internal_maxima(self):
        tree = make_tree()
        for poi, _ in random_pois(150, seed=4):
            tree.insert_poi(poi)
        tree.digest_epoch(3, {i: i % 5 + 1 for i in range(150)})
        tree.check_invariants()
        assert tree.global_epoch_max()[3] == 5

    def test_digest_unknown_poi(self):
        tree = make_tree()
        with pytest.raises(KeyError):
            tree.digest_epoch(0, {"ghost": 1})

    def test_digest_ignores_non_positive(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 5, 5))
        tree.digest_epoch(0, {"a": 0})
        assert tree.poi_tia("a").get(0) == 0

    def test_digest_advances_current_time(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 5, 5))
        assert tree.current_time == 10.0
        tree.digest_epoch(20, {"a": 1})
        assert tree.current_time == 21.0

    def test_digestion_equivalent_to_build_time_history(self):
        """Inserting history up front vs digesting epoch by epoch."""
        pois = random_pois(120, seed=5)
        up_front = make_tree()
        for poi, history in pois:
            up_front.insert_poi(poi, history)
        incremental = make_tree()
        for poi, _ in pois:
            incremental.insert_poi(poi)
        for epoch in range(10):
            counts = {
                poi.poi_id: history[epoch]
                for poi, history in pois
                if epoch in history
            }
            incremental.digest_epoch(epoch, counts)
        incremental.check_invariants()
        interval = TimeInterval(0, 10)
        for poi, _ in pois:
            assert up_front.poi_tia(poi.poi_id).aggregate(
                up_front.clock, interval
            ) == incremental.poi_tia(poi.poi_id).aggregate(
                incremental.clock, interval
            )
        assert up_front.global_epoch_max() == incremental.global_epoch_max()


class TestNormalisation:
    def test_normalized_position(self):
        tree = make_tree()
        assert tree.normalized_position(POI("x", 50, 25)) == (0.5, 0.25)

    def test_aggregate_coordinate_extremes(self):
        tree = make_tree()
        tree.insert_poi(POI("hot", 1, 1), {e: 10 for e in range(10)})
        tree.insert_poi(POI("cold", 2, 2), {0: 1})
        assert tree.aggregate_coordinate("hot") == pytest.approx(0.0)
        assert tree.aggregate_coordinate("cold") == pytest.approx(1 - 0.1 / 10)

    def test_aggregate_coordinate_empty_tree_rate(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 1, 1))
        assert tree.aggregate_coordinate("a") == 1.0

    def test_max_aggregate_bound_vs_exact(self):
        tree = make_tree()
        for poi, history in random_pois(100, seed=6):
            tree.insert_poi(poi, history)
        interval = TimeInterval(0, 10)
        bound = tree.normalizer(interval).g_max
        exact = tree.normalizer(interval, exact=True).g_max
        assert bound >= exact > 0

    def test_normalizer_falls_back_to_one(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 1, 1))
        assert tree.normalizer(TimeInterval(0, 5)).g_max == 1.0


class TestRefresh:
    def test_refresh_preserves_content(self):
        tree = make_tree()
        pois = random_pois(150, seed=7)
        for poi, history in pois:
            tree.insert_poi(poi, history)
        before = {p.poi_id: dict(tree.poi_tia(p.poi_id).items()) for p, _ in pois}
        tree.refresh_aggregate_dimension()
        tree.check_invariants()
        assert len(tree) == 150
        for poi_id, history in before.items():
            assert dict(tree.poi_tia(poi_id).items()) == history

    def test_refresh_updates_stale_rate(self):
        tree = make_tree()
        tree.insert_poi(POI("a", 1, 1), {0: 1})
        # Digest a burst that makes 'a' much hotter than at placement.
        for epoch in range(1, 10):
            tree.digest_epoch(epoch, {"a": 50})
        tree.refresh_aggregate_dimension()
        assert tree.aggregate_coordinate("a") == pytest.approx(0.0)
        tree.check_invariants()


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.dictionaries(st.integers(0, 9), st.integers(1, 9), max_size=5),
        ),
        min_size=1,
        max_size=100,
    ),
    st.sampled_from(["integral3d", "spatial", "aggregate"]),
)
def test_property_invariants_hold(pois, strategy):
    tree = make_tree(strategy)
    for i, (x, y, history) in enumerate(pois):
        tree.insert_poi(POI(i, x, y), history)
    tree.check_invariants()
    assert len(tree) == len(pois)
