"""Access counter bookkeeping."""

from repro.storage.stats import AccessStats


def test_initial_state_zero():
    stats = AccessStats()
    assert stats.rtree_nodes == 0
    assert stats.total_io == 0


def test_record_node_split_by_kind():
    stats = AccessStats()
    stats.record_node(is_leaf=True)
    stats.record_node(is_leaf=True)
    stats.record_node(is_leaf=False)
    assert stats.rtree_leaf == 2
    assert stats.rtree_internal == 1
    assert stats.rtree_nodes == 3


def test_record_tia_page_buffered_vs_not():
    stats = AccessStats()
    stats.record_tia_page(buffered=False)
    stats.record_tia_page(buffered=True)
    assert stats.tia_pages == 1
    assert stats.tia_buffer_hits == 1
    assert stats.total_io == 1  # buffer hits are free


def test_snapshot_diff():
    stats = AccessStats()
    stats.record_node(is_leaf=False)
    snap = stats.snapshot()
    stats.record_node(is_leaf=True)
    stats.record_node(is_leaf=True)
    stats.record_tia_page(buffered=False)
    delta = stats.diff(snap)
    assert delta.rtree_leaf == 2
    assert delta.rtree_internal == 0
    assert delta.tia_pages == 1
    # The original keeps its totals.
    assert stats.rtree_nodes == 3


def test_reset():
    stats = AccessStats()
    stats.record_node(is_leaf=True)
    stats.record_tia_page(buffered=True)
    stats.reset()
    assert stats.snapshot() == (0, 0, 0, 0)


def test_diff_of_unchanged_snapshot_is_zero():
    stats = AccessStats()
    stats.record_node(is_leaf=True)
    delta = stats.diff(stats.snapshot())
    assert delta.snapshot() == (0, 0, 0, 0)


def test_as_dict_is_json_shaped_and_complete():
    stats = AccessStats()
    stats.record_node(is_leaf=True)
    stats.record_node(is_leaf=False)
    stats.record_tia_page(buffered=False)
    stats.record_tia_page(buffered=True)
    assert stats.as_dict() == {
        "rtree_internal": 1,
        "rtree_leaf": 1,
        "rtree_nodes": 2,
        "tia_pages": 1,
        "tia_buffer_hits": 1,
        "total_io": 3,
    }


def test_merge_adds_counters_and_returns_self():
    left = AccessStats()
    left.record_node(is_leaf=True)
    right = AccessStats()
    right.record_node(is_leaf=False)
    right.record_tia_page(buffered=False)
    right.record_tia_page(buffered=True)
    assert left.merge(right) is left
    assert left.rtree_leaf == 1
    assert left.rtree_internal == 1
    assert left.tia_pages == 1
    assert left.tia_buffer_hits == 1
    # The source is untouched.
    assert right.rtree_leaf == 0


def test_merge_accumulates_across_batches():
    total = AccessStats()
    for _ in range(3):
        batch = AccessStats()
        batch.record_node(is_leaf=True)
        batch.record_node(is_leaf=False)
        total.merge(batch)
    assert total.rtree_nodes == 6
