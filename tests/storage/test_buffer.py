"""LRU buffer pool behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.buffer import LRUBufferPool


def test_first_access_misses():
    pool = LRUBufferPool(4)
    assert pool.access("p1") is False
    assert pool.misses == 1
    assert pool.hits == 0


def test_second_access_hits():
    pool = LRUBufferPool(4)
    pool.access("p1")
    assert pool.access("p1") is True
    assert pool.hits == 1


def test_lru_eviction_order():
    pool = LRUBufferPool(2)
    pool.access("a")
    pool.access("b")
    pool.access("a")  # refresh a; b is now least recent
    pool.access("c")  # evicts b
    assert "b" not in pool
    assert pool.access("a") is True
    assert pool.access("b") is False


def test_zero_capacity_never_hits():
    pool = LRUBufferPool(0)
    for _ in range(5):
        assert pool.access("same") is False
    assert pool.misses == 5
    assert len(pool) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUBufferPool(-1)


def test_invalidate_forces_miss():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.invalidate("a")
    assert pool.access("a") is False


def test_clear_keeps_counters():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.access("a")
    pool.clear()
    assert len(pool) == 0
    assert pool.hits == 1
    assert pool.misses == 1


def test_reset_counters():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.reset_counters()
    assert pool.hits == 0 and pool.misses == 0
    assert "a" in pool


def test_resident_set_never_exceeds_capacity():
    pool = LRUBufferPool(3)
    for i in range(50):
        pool.access(i)
        assert len(pool) <= 3


@given(st.lists(st.integers(0, 9), max_size=200), st.integers(1, 5))
def test_property_hits_plus_misses_equals_accesses(accesses, capacity):
    pool = LRUBufferPool(capacity)
    for page in accesses:
        pool.access(page)
    assert pool.hits + pool.misses == len(accesses)
    assert len(pool) <= capacity


@given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
def test_property_working_set_within_capacity_always_hits(accesses):
    # With capacity >= distinct pages, only the first touch of each page
    # can miss.
    pool = LRUBufferPool(4)
    for page in accesses:
        pool.access(page)
    assert pool.misses == len(set(accesses))
