"""LRU buffer pool behaviour."""

from collections import OrderedDict

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.buffer import LRUBufferPool


def test_first_access_misses():
    pool = LRUBufferPool(4)
    assert pool.access("p1") is False
    assert pool.misses == 1
    assert pool.hits == 0


def test_second_access_hits():
    pool = LRUBufferPool(4)
    pool.access("p1")
    assert pool.access("p1") is True
    assert pool.hits == 1


def test_lru_eviction_order():
    pool = LRUBufferPool(2)
    pool.access("a")
    pool.access("b")
    pool.access("a")  # refresh a; b is now least recent
    pool.access("c")  # evicts b
    assert "b" not in pool
    assert pool.access("a") is True
    assert pool.access("b") is False


def test_zero_capacity_never_hits():
    pool = LRUBufferPool(0)
    for _ in range(5):
        assert pool.access("same") is False
    assert pool.misses == 5
    assert len(pool) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUBufferPool(-1)


def test_invalidate_forces_miss():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.invalidate("a")
    assert pool.access("a") is False


def test_clear_keeps_counters():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.access("a")
    pool.clear()
    assert len(pool) == 0
    assert pool.hits == 1
    assert pool.misses == 1


def test_reset_counters():
    pool = LRUBufferPool(4)
    pool.access("a")
    pool.reset_counters()
    assert pool.hits == 0 and pool.misses == 0
    assert "a" in pool


def test_resident_set_never_exceeds_capacity():
    pool = LRUBufferPool(3)
    for i in range(50):
        pool.access(i)
        assert len(pool) <= 3


@given(st.lists(st.integers(0, 9), max_size=200), st.integers(1, 5))
def test_property_hits_plus_misses_equals_accesses(accesses, capacity):
    pool = LRUBufferPool(capacity)
    for page in accesses:
        pool.access(page)
    assert pool.hits + pool.misses == len(accesses)
    assert len(pool) <= capacity


@given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
def test_property_working_set_within_capacity_always_hits(accesses):
    # With capacity >= distinct pages, only the first touch of each page
    # can miss.
    pool = LRUBufferPool(4)
    for page in accesses:
        pool.access(page)
    assert pool.misses == len(set(accesses))


def test_eviction_counter_counts_only_pressure():
    pool = LRUBufferPool(2)
    pool.access("a")
    pool.access("b")
    assert pool.evictions == 0
    pool.access("c")  # evicts a
    assert pool.evictions == 1
    pool.invalidate("b")  # deliberate: not an eviction
    pool.clear()
    assert pool.evictions == 1


def test_invalidate_reports_residency():
    pool = LRUBufferPool(2)
    pool.access("a")
    assert pool.invalidate("a") is True
    assert pool.invalidate("a") is False
    assert pool.invalidate("never-seen") is False


def test_clear_returns_dropped_count_then_invalidate_sees_nothing():
    pool = LRUBufferPool(4)
    for page in ("a", "b", "c"):
        pool.access(page)
    assert pool.clear() == 3
    assert pool.clear() == 0
    # The interplay that used to be easy to get wrong: after a clear,
    # invalidating a previously-resident page must report absence.
    assert pool.invalidate("a") is False


def test_resident_pages_lru_to_mru_order():
    pool = LRUBufferPool(3)
    for page in ("a", "b", "c"):
        pool.access(page)
    pool.access("a")  # refresh
    assert pool.resident_pages() == ("b", "c", "a")
    pool.access("d")  # evicts b
    assert pool.resident_pages() == ("c", "a", "d")


def test_reset_counters_zeroes_evictions():
    pool = LRUBufferPool(1)
    pool.access("a")
    pool.access("b")
    assert pool.evictions == 1
    pool.reset_counters()
    assert (pool.hits, pool.misses, pool.evictions) == (0, 0, 0)


class _ModelPool:
    """Reference model: the documented contract, written the naive way."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.pages = OrderedDict()
        self.hits = self.misses = self.evictions = 0

    def access(self, page):
        if self.capacity == 0:
            self.misses += 1
            return False
        if page in self.pages:
            self.pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self.pages[page] = True
        while len(self.pages) > self.capacity:
            self.pages.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate(self, page):
        return self.pages.pop(page, None) is not None

    def clear(self):
        dropped = len(self.pages)
        self.pages.clear()
        return dropped


_OPERATIONS = st.one_of(
    st.tuples(st.just("access"), st.integers(0, 6)),
    st.tuples(st.just("invalidate"), st.integers(0, 6)),
    st.tuples(st.just("clear"), st.none()),
)


@given(st.integers(0, 4), st.lists(_OPERATIONS, max_size=300))
def test_property_matches_reference_model(capacity, operations):
    # Drive the pool and an independently written model through the same
    # interleaving of access/invalidate/clear; every observable (return
    # values, counters, residency, order) must agree at every step.
    pool = LRUBufferPool(capacity)
    model = _ModelPool(capacity)
    for name, argument in operations:
        if name == "access":
            assert pool.access(argument) == model.access(argument)
        elif name == "invalidate":
            assert pool.invalidate(argument) == model.invalidate(argument)
        else:
            assert pool.clear() == model.clear()
        assert pool.resident_pages() == tuple(model.pages)
        assert (pool.hits, pool.misses, pool.evictions) == (
            model.hits,
            model.misses,
            model.evictions,
        )
        assert len(pool) == len(model.pages)
