"""Corrupted snapshots must fail loudly, naming the damaged section."""

import json
import random

import numpy as np
import pytest

from repro import POI, TARTree, datasets
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.reliability.faults import flip_bit, truncate_file
from repro.spatial.geometry import Rect
from repro.storage.serialize import (
    CorruptSnapshotError,
    load_dataset,
    load_tree,
    save_dataset,
    save_tree,
)
from repro.temporal.epochs import EpochClock, TimeInterval


@pytest.fixture(scope="module")
def dataset():
    return datasets.make("LA", scale=0.01, seed=5)


def build_tree():
    rng = random.Random(9)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        tia_backend="memory",
    )
    for i in range(120):
        history = {e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4}
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


class TestDatasetCorruption:
    def test_truncated_archive_raises(self, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(dataset, path)
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CorruptSnapshotError):
            load_dataset(path)

    def test_bit_flip_raises(self, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(dataset, path)
        size = path.stat().st_size
        flip_bit(path, bit_index=(size // 2) * 8)  # inside a compressed member
        with pytest.raises(CorruptSnapshotError):
            load_dataset(path)

    def test_bit_flips_across_the_file_raise(self, dataset, tmp_path):
        # A flip anywhere in the member data must be caught -- either as
        # container damage or as a section CRC failure.
        reference = tmp_path / "ref.npz"
        save_dataset(dataset, reference)
        size = reference.stat().st_size
        for fraction in (0.2, 0.4, 0.6, 0.8):
            path = tmp_path / ("flip-%d.npz" % (fraction * 10))
            path.write_bytes(reference.read_bytes())
            flip_bit(path, bit_index=int(size * fraction) * 8)
            with pytest.raises((CorruptSnapshotError, ValueError)):
                load_dataset(path)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(CorruptSnapshotError):
            load_dataset(path)

    def test_tampered_section_names_it(self, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(dataset, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        tampered = arrays["positions"].copy()
        tampered[0, 0] += 1.0
        arrays["positions"] = tampered  # checksum left stale on purpose
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(CorruptSnapshotError) as excinfo:
            load_dataset(path)
        assert excinfo.value.section == "positions"

    def test_unknown_version_is_a_value_error(self, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(dataset, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["version"] = np.int64(99)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(ValueError, match="versions 1, 2"):
            load_dataset(path)

    def test_legacy_v1_archive_still_loads(self, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(dataset, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["version"] = np.int64(1)
        del arrays["checksum_names"]
        del arrays["checksum_values"]
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_dataset(path)
        assert loaded.positions == dataset.positions
        assert loaded.name == dataset.name


class TestTreeCorruption:
    def test_truncated_snapshot_raises(self, tmp_path):
        path = tmp_path / "t.json"
        save_tree(build_tree(), path)
        truncate_file(path, keep_fraction=0.7)
        with pytest.raises(CorruptSnapshotError):
            load_tree(path)

    def test_bit_flips_across_the_file_raise(self, tmp_path):
        reference = tmp_path / "ref.json"
        save_tree(build_tree(), reference)
        size = reference.stat().st_size
        for fraction in (0.2, 0.4, 0.6, 0.8):
            path = tmp_path / ("flip-%d.json" % (fraction * 10))
            path.write_bytes(reference.read_bytes())
            flip_bit(path, bit_index=int(size * fraction) * 8)
            with pytest.raises(CorruptSnapshotError):
                load_tree(path)

    def test_tampered_history_names_the_pois_section(self, tmp_path):
        path = tmp_path / "t.json"
        save_tree(build_tree(), path)
        payload = json.loads(path.read_text())
        payload["sections"]["pois"][0][3][0][1] += 1  # silent over-count
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptSnapshotError) as excinfo:
            load_tree(path)
        assert excinfo.value.section == "pois"
        assert "CRC-32" in str(excinfo.value)

    def test_missing_framing_raises(self, tmp_path):
        path = tmp_path / "t.json"
        save_tree(build_tree(), path)
        payload = json.loads(path.read_text())
        del payload["checksums"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptSnapshotError):
            load_tree(path)

    def test_unknown_version_is_a_value_error(self, tmp_path):
        path = tmp_path / "t.json"
        save_tree(build_tree(), path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="versions 1, 2"):
            load_tree(path)

    def test_legacy_v1_snapshot_still_loads(self, tmp_path):
        tree = build_tree()
        path = tmp_path / "t.json"
        save_tree(tree, path)
        payload = json.loads(path.read_text())
        legacy = dict(payload["sections"]["config"])
        legacy["pois"] = payload["sections"]["pois"]
        legacy["version"] = 1
        path.write_text(json.dumps(legacy))
        loaded = load_tree(path)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0.0, 10.0), k=8)
        assert [r.poi_id for r in knnta_search(loaded, query)] == [
            r.poi_id for r in knnta_search(tree, query)
        ]


class TestRoundTripStability:
    def test_save_load_save_is_byte_stable_after_digests(self, tmp_path):
        # Crash recovery byte-compares snapshots, so reloading must not
        # "heal" any state (e.g. the lambda-hat normaliser drifting as
        # digested histories outgrow the build-time maximum).
        tree = build_tree()
        poi_id = next(iter(tree.poi_ids()))
        tree.digest_epoch(11, {poi_id: 500})
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_tree(tree, first)
        save_tree(load_tree(first), second)
        assert first.read_bytes() == second.read_bytes()
