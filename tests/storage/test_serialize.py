"""Persistence round trips for data sets and trees."""

import random

import numpy as np
import pytest

from repro import POI, TARTree, TimeInterval, datasets
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.spatial.geometry import Rect
from repro.storage.serialize import (
    load_dataset,
    load_tree,
    save_dataset,
    save_tree,
)
from repro.temporal.epochs import EpochClock, VariedEpochClock


@pytest.fixture()
def dataset():
    return datasets.make("LA", scale=0.01, seed=5)


class TestDatasetRoundTrip:
    def test_exact_round_trip(self, dataset, tmp_path):
        path = tmp_path / "la.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.world == dataset.world
        assert loaded.t0 == dataset.t0 and loaded.tc == dataset.tc
        assert loaded.threshold == dataset.threshold
        assert loaded.positions == dataset.positions
        for poi_id, times in dataset.checkin_times.items():
            assert np.array_equal(loaded.checkin_times[poi_id], times)

    def test_loaded_dataset_builds_identical_tree(self, dataset, tmp_path):
        path = tmp_path / "la.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        original_tree = TARTree.build(dataset)
        reloaded_tree = TARTree.build(loaded)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 200), k=10)
        assert [r.poi_id for r in knnta_search(original_tree, query)] == [
            r.poi_id for r in knnta_search(reloaded_tree, query)
        ]


def build_tree(strategy="integral3d", clock=None, **kwargs):
    rng = random.Random(9)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=clock or EpochClock(0.0, 1.0),
        current_time=12.0,
        strategy=strategy,
        tia_backend="memory",
        **kwargs,
    )
    for i in range(150):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


class TestTreeRoundTrip:
    @pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
    def test_queries_identical_after_reload(self, strategy, tmp_path):
        tree = build_tree(strategy)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        reloaded = load_tree(path)
        reloaded.check_invariants()
        assert len(reloaded) == len(tree)
        assert reloaded.strategy.name == tree.strategy.name
        for seed in range(3):
            rng = random.Random(seed)
            query = KNNTAQuery(
                (rng.random() * 100, rng.random() * 100),
                TimeInterval(0, 12),
                k=10,
                alpha0=0.3,
            )
            a = [(r.poi_id, round(r.score, 10)) for r in knnta_search(tree, query)]
            b = [(r.poi_id, round(r.score, 10)) for r in knnta_search(reloaded, query)]
            assert a == b

    def test_configuration_preserved(self, tmp_path):
        tree = build_tree(node_size=512, aggregate_kind="max")
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        reloaded = load_tree(path)
        assert reloaded.node_size == 512
        assert reloaded.aggregate_kind.value == "max"
        assert reloaded.clock.epoch_length == tree.clock.epoch_length
        assert reloaded.current_time == tree.current_time

    def test_varied_clock_preserved(self, tmp_path):
        clock = VariedEpochClock.exponential(0.0, 1.0, count=6)
        tree = build_tree(clock=clock)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        reloaded = load_tree(path)
        assert isinstance(reloaded.clock, VariedEpochClock)
        assert reloaded.clock.boundaries == clock.boundaries

    def test_overrides_apply(self, tmp_path):
        tree = build_tree()
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        reloaded = load_tree(path, tia_backend="paged", tia_buffer_slots=0)
        assert reloaded.tia_backend == "paged"
        assert len(reloaded) == len(tree)

    def test_histories_preserved(self, tmp_path):
        tree = build_tree()
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        reloaded = load_tree(path)
        for poi_id in tree.poi_ids():
            assert dict(reloaded.poi_tia(poi_id).items()) == dict(
                tree.poi_tia(poi_id).items()
            )

    def test_unserialisable_poi_id_rejected(self, tmp_path):
        tree = TARTree(
            world=Rect((0.0, 0.0), (1.0, 1.0)),
            clock=EpochClock(0.0, 1.0),
            current_time=1.0,
            tia_backend="memory",
        )
        tree.insert_poi(POI(("tuple", "id"), 0.5, 0.5))
        with pytest.raises(TypeError):
            save_tree(tree, tmp_path / "bad.json")

    def test_version_check(self, tmp_path):
        tree = build_tree()
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        import json

        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_tree(path)
