"""Node/page sizing rules, including the paper's exact capacities."""

import pytest

from repro.storage.pager import (
    entry_bytes,
    node_capacity,
    tia_internal_capacity,
    tia_leaf_capacity,
)


def test_entry_bytes_2d():
    assert entry_bytes(2) == 20  # 4 coords * 4 bytes + 4-byte pointer


def test_entry_bytes_3d():
    assert entry_bytes(3) == 28


def test_entry_bytes_rejects_zero_dims():
    with pytest.raises(ValueError):
        entry_bytes(0)


def test_paper_capacity_1024_bytes_2d():
    # Section 8: "the node capacities are 50 and 36 for 2- and
    # 3-dimensional entries respectively" at 1024 bytes.
    assert node_capacity(1024, 2) == 50


def test_paper_capacity_1024_bytes_3d():
    assert node_capacity(1024, 3) == 36


@pytest.mark.parametrize(
    "node_size,dims,expected",
    [
        (512, 2, 24),
        (2048, 2, 101),
        (4096, 2, 204),
        (8192, 2, 408),
        (512, 3, 17),
        (2048, 3, 72),
        (4096, 3, 145),
        (8192, 3, 292),
    ],
)
def test_capacity_scales_with_node_size(node_size, dims, expected):
    assert node_capacity(node_size, dims) == expected


def test_capacity_monotone_in_node_size():
    sizes = [512, 1024, 2048, 4096, 8192]
    caps = [node_capacity(s, 3) for s in sizes]
    assert caps == sorted(caps)
    assert len(set(caps)) == len(caps)


def test_tiny_node_size_rejected():
    with pytest.raises(ValueError):
        node_capacity(64, 3)


def test_tia_leaf_capacity():
    assert tia_leaf_capacity(256) == (256 - 16) // 12


def test_tia_internal_capacity():
    assert tia_internal_capacity(256) == (256 - 16) // 8


def test_tia_capacity_rejects_tiny_pages():
    with pytest.raises(ValueError):
        tia_leaf_capacity(40)
    with pytest.raises(ValueError):
        tia_internal_capacity(24)
