"""Sliding-window derivation: the interval/epoch-range agreement."""

import pytest

from repro import EpochClock, IntervalSemantics, VariedEpochClock
from repro.continuous import WindowState, window_state


@pytest.fixture
def clock():
    return EpochClock(0.0, 7.0)


class TestWindowState:
    def test_trailing_window_selects_the_last_epochs(self, clock):
        # current_time 70 => epochs 0..9 have begun, latest is 9.
        window = window_state(clock, 70.0, 3)
        assert window.latest_epoch == 9
        assert window.first_epoch == 7
        assert list(window.epochs) == [7, 8, 9]

    def test_epochs_come_from_epoch_range_not_arithmetic(self, clock):
        # The invariant the incremental evaluator rests on: the window's
        # epoch range IS clock.epoch_range(interval, semantics), so a
        # fresh tree.query() over the same interval sees the same epochs.
        for semantics in IntervalSemantics:
            window = window_state(clock, 100.0, 4, semantics)
            assert window.epochs == clock.epoch_range(
                window.interval, semantics
            )

    def test_clamped_at_epoch_zero(self, clock):
        window = window_state(clock, 7.5, 10)
        assert window.first_epoch == 0
        assert window.latest_epoch == 1

    def test_before_the_clock_starts_pins_epoch_zero(self, clock):
        window = window_state(clock, 0.0, 2)
        assert window.first_epoch == 0
        assert window.latest_epoch == 0

    def test_intersects_endpoint_stays_inside_the_last_epoch(self, clock):
        # An end at te would also intersect the NEXT epoch; the midpoint
        # keeps the selection to exactly the trailing window.
        window = window_state(clock, 70.0, 2, IntervalSemantics.INTERSECTS)
        ts, te = clock.bounds(window.latest_epoch)
        assert ts < window.interval.end < te

    def test_contained_endpoint_is_the_last_epoch_te(self, clock):
        window = window_state(clock, 70.0, 2, IntervalSemantics.CONTAINED)
        assert window.interval.end == clock.bounds(window.latest_epoch)[1]
        assert list(window.epochs) == [8, 9]

    def test_open_tail_epoch_falls_back_to_ts(self):
        varied = VariedEpochClock([0.0, 10.0, 20.0])  # epoch 2 is open
        for semantics in IntervalSemantics:
            window = window_state(varied, 25.0, 2, semantics)
            assert window.latest_epoch == 2
            assert window.interval.end == 20.0
            assert window.epochs == varied.epoch_range(
                window.interval, semantics
            )

    def test_window_epochs_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            window_state(clock, 10.0, 0)
        with pytest.raises(ValueError):
            window_state(clock, 10.0, -3)

    def test_describe_is_json_ready(self, clock):
        described = window_state(clock, 70.0, 3).describe()
        assert described == {
            "interval": [49.0, described["interval"][1]],
            "epochs": [7, 10],
            "first_epoch": 7,
            "latest_epoch": 9,
        }

    def test_window_states_compare_by_value(self, clock):
        assert window_state(clock, 70.0, 3) == window_state(clock, 70.0, 3)
        assert window_state(clock, 70.0, 3) != window_state(clock, 77.0, 3)
        assert isinstance(window_state(clock, 70.0, 3), WindowState)
