"""The subscription contract: every pushed state is bit-identical to a
one-shot ``tree.query()`` at that window.

This is the property the incremental evaluator's bound argument (see
``repro/continuous/evaluator.py``) must uphold: whatever mix of digests,
inserts and deletes slid the window there, a subscriber's ranked rows —
scores, distances, aggregates, order, exactness — equal what a client
issuing the equivalent :class:`~repro.KNNTAQuery` at that instant would
get.  Single tree and cluster, including across a shard kill, explicit
degradation, and online recovery.
"""

import random

import pytest

from repro import (
    ClusterTree,
    KNNTAQuery,
    POI,
    ResilienceConfig,
    SubscriptionRegistry,
    TARTree,
    open_cluster,
    save_cluster,
)
from repro.continuous import window_state
from repro.reliability.faults import FaultInjector, constant
from repro.temporal.tia import IntervalSemantics

from tests.continuous.conftest import replay

NO_SLEEP = ResilienceConfig(sleep=lambda _: None)

SPECS = [
    # (point, window_epochs, k, alpha0, semantics)
    ((40.0, 40.0), 3, 5, 0.3, IntervalSemantics.INTERSECTS),
    ((10.0, 80.0), 2, 3, 0.7, IntervalSemantics.INTERSECTS),
    ((60.0, 20.0), 6, 10, 0.5, IntervalSemantics.CONTAINED),
    ((50.0, 50.0), 1, 2, 0.1, IntervalSemantics.INTERSECTS),
]


def one_shot_query(tree, spec):
    point, window, k, alpha0, semantics = spec
    state = window_state(tree.clock, tree.current_time, window, semantics)
    return KNNTAQuery(point, state.interval, k=k, alpha0=alpha0,
                      semantics=semantics)


def assert_state_matches(tree, subscription, spec, allow_degraded=False):
    query = one_shot_query(tree, spec)
    if allow_degraded:
        oracle = tree.query(query, allow_degraded=True)
    else:
        oracle = tree.query(query)
    assert list(subscription.last_rows) == list(oracle.rows)
    assert subscription.last_exact == bool(oracle.exact)


def kill_shard(injector, index, kind="fatal"):
    for site in ("query", "mutate", "scrub"):
        injector.configure(
            "shard.%d.%s" % (index, site), schedule=constant(1.0), kind=kind
        )


def revive_shard(injector, index):
    for site in ("query", "mutate", "scrub"):
        injector.disarm("shard.%d.%s" % (index, site))


class TestSingleTreeEquivalence:
    def test_digest_stream(self, half_tree, small_dataset):
        registry = SubscriptionRegistry(half_tree)
        subs = [
            (registry.subscribe(spec[0], spec[1], k=spec[2], alpha0=spec[3],
                                semantics=spec[4])[0], spec)
            for spec in SPECS
        ]
        for sub, spec in subs:
            assert_state_matches(half_tree, sub, spec)
        advances = 0
        for epoch, counts in replay(half_tree, small_dataset):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
            for sub, spec in subs:
                assert_state_matches(half_tree, sub, spec)
            advances += 1
        assert advances >= 5
        counters = registry.counters()
        assert counters["evals.incremental"] > 0  # the fast path ran
        assert counters["evals.errors"] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_mutation_stream(self, small_dataset, seed):
        rng = random.Random(seed)
        tree = TARTree.build(small_dataset.snapshot(0.7))
        registry = SubscriptionRegistry(tree)
        subs = [
            (registry.subscribe(spec[0], spec[1], k=spec[2], alpha0=spec[3],
                                semantics=spec[4])[0], spec)
            for spec in SPECS
        ]
        inserted = 0
        for step in range(60):
            action = rng.random()
            epoch = tree.clock.epoch_of(tree.current_time)
            if action < 0.6:
                ids = sorted(tree.poi_ids(), key=str)
                batch = {
                    poi_id: rng.randint(1, 9)
                    for poi_id in rng.sample(ids, min(8, len(ids)))
                }
                tree.digest_epoch(epoch + rng.randint(0, 2), batch)
            elif action < 0.8:
                poi = POI(
                    "new-%d-%d" % (seed, inserted),
                    rng.uniform(1.0, 99.0),
                    rng.uniform(1.0, 99.0),
                )
                tree.insert_poi(poi, {epoch: rng.randint(1, 20)})
                inserted += 1
            elif len(tree) > 10:
                tree.delete_poi(rng.choice(sorted(tree.poi_ids(), key=str)))
            registry.advance()
            for sub, spec in subs:
                assert_state_matches(tree, sub, spec)
        counters = registry.counters()
        assert counters["evals.incremental"] > 0
        assert counters["evals.fresh"] > 0  # fallbacks exercised too
        assert counters["evals.errors"] == 0


class TestClusterEquivalence:
    def build(self, small_dataset, injector=None, **kwargs):
        kwargs.setdefault("resilience", NO_SLEEP)
        kwargs.setdefault("allow_degraded", True)
        snapshot = small_dataset.snapshot(0.7)
        return ClusterTree.build(
            snapshot, num_shards=3, injector=injector, **kwargs
        )

    def test_digest_stream_matches_cluster_query(
        self, small_dataset
    ):
        cluster = self.build(small_dataset)
        registry = SubscriptionRegistry(cluster)
        subs = [
            (registry.subscribe(spec[0], spec[1], k=spec[2], alpha0=spec[3],
                                semantics=spec[4])[0], spec)
            for spec in SPECS
        ]
        for epoch, counts in replay(cluster, small_dataset, limit=8):
            cluster.digest_epoch(epoch, counts)
            registry.advance()
            for sub, spec in subs:
                assert_state_matches(cluster, sub, spec, allow_degraded=True)
        assert registry.counters()["evals.incremental"] > 0
        assert registry.counters()["evals.errors"] == 0

    def test_shard_kill_degrades_explicitly_and_stays_equivalent(
        self, small_dataset
    ):
        injector = FaultInjector(seed=0)
        cluster = self.build(small_dataset, injector=injector)
        registry = SubscriptionRegistry(cluster)
        spec = SPECS[0]
        sub, initial = registry.subscribe(
            spec[0], spec[1], k=spec[2], alpha0=spec[3], semantics=spec[4]
        )
        assert initial.exact
        victim = cluster.plan.route(
            cluster.poi(initial.answer.rows[0].poi_id).point
        )
        pushed = []
        sub.sink = pushed.append
        kill_shard(injector, victim)
        stream = replay(cluster, small_dataset, limit=6)
        degraded_seen = 0
        for epoch, counts in stream:
            try:
                cluster.digest_epoch(epoch, counts)
            except Exception:
                pass  # the down shard's batch is lost; partial state stands
            registry.advance()
            assert_state_matches(cluster, sub, spec, allow_degraded=True)
            if not sub.last_exact:
                degraded_seen += 1
        assert degraded_seen > 0
        # The exactness flip itself was pushed as an update.
        assert any(update.degraded for update in pushed)
        assert registry.counters()["evals.errors"] == 0

    def test_online_recovery_restores_exact_subscriptions(
        self, small_dataset, tmp_path
    ):
        injector = FaultInjector(seed=0)
        built = self.build(small_dataset)
        save_cluster(built, str(tmp_path / "c"))
        built.close()
        cluster = open_cluster(
            str(tmp_path / "c"),
            injector=injector,
            allow_degraded=True,
            resilience=NO_SLEEP,
        )
        try:
            registry = SubscriptionRegistry(cluster)
            spec = SPECS[0]
            sub, initial = registry.subscribe(
                spec[0], spec[1], k=spec[2], alpha0=spec[3], semantics=spec[4]
            )
            victim = cluster.plan.route(
                cluster.poi(initial.answer.rows[0].poi_id).point
            )
            kill_shard(injector, victim)
            stream = list(replay(cluster, small_dataset, limit=6))
            degraded_seen = False
            for epoch, counts in stream[:3]:
                try:
                    cluster.digest_epoch(epoch, counts)
                except Exception:
                    pass
                registry.advance()
                assert_state_matches(cluster, sub, spec, allow_degraded=True)
                degraded_seen = degraded_seen or not sub.last_exact
            # The kill degraded the subscription (possibly transiently:
            # once the window slides past the victim's lost epochs the
            # bound certificate can certify the dead shard harmless and
            # the answer turns exact again — equivalence held throughout).
            assert degraded_seen
            revive_shard(injector, victim)
            cluster.recover_shard(victim)
            # recover_shard replaced the shard's tree object; the next
            # advance must notice, re-attach its observer, rebuild the
            # epoch index and force fresh evaluations.
            for epoch, counts in stream[3:]:
                cluster.digest_epoch(epoch, counts)
                registry.advance()
                assert_state_matches(cluster, sub, spec, allow_degraded=True)
            assert sub.last_exact
            assert registry.counters()["evals.errors"] == 0
        finally:
            cluster.close()
