"""The ordered top-k delta model."""

from repro import DeltaKind, QueryResult, RankedAnswer, TopKDelta
from repro.continuous import WindowUpdate, diff_topk, window_state
from repro.temporal.epochs import EpochClock


def row(poi_id, score):
    return QueryResult(poi_id, score, score, 1.0 - score)


class TestDiffTopk:
    def test_identical_rows_produce_no_deltas(self):
        rows = [row("a", 0.1), row("b", 0.2)]
        assert diff_topk(rows, rows) == ()

    def test_score_change_without_rank_change_is_silent(self):
        old = [row("a", 0.1), row("b", 0.2)]
        new = [row("a", 0.15), row("b", 0.6)]
        assert diff_topk(old, new) == ()

    def test_enter_carries_the_new_rank_and_row(self):
        new = [row("a", 0.1), row("b", 0.2)]
        deltas = diff_topk([], new)
        assert [d.kind for d in deltas] == [DeltaKind.ENTER, DeltaKind.ENTER]
        assert [(d.poi_id, d.rank, d.old_rank) for d in deltas] == [
            ("a", 0, None),
            ("b", 1, None),
        ]
        assert deltas[0].row == new[0]

    def test_leave_carries_the_old_rank_only(self):
        deltas = diff_topk([row("a", 0.1), row("b", 0.2)], [row("a", 0.1)])
        assert deltas == (TopKDelta(DeltaKind.LEAVE, "b", None, 1, None),)

    def test_moves_report_both_ranks(self):
        old = [row("a", 0.1), row("b", 0.2)]
        new = [row("b", 0.05), row("a", 0.1)]
        deltas = diff_topk(old, new)
        assert [(d.kind, d.poi_id, d.old_rank, d.rank) for d in deltas] == [
            (DeltaKind.MOVE, "b", 1, 0),
            (DeltaKind.MOVE, "a", 0, 1),
        ]

    def test_leaves_first_then_ascending_new_rank(self):
        old = [row("a", 0.1), row("b", 0.2), row("c", 0.3)]
        new = [row("c", 0.05), row("d", 0.1), row("a", 0.4)]
        kinds = [(d.kind, d.poi_id) for d in diff_topk(old, new)]
        assert kinds == [
            (DeltaKind.LEAVE, "b"),
            (DeltaKind.MOVE, "c"),
            (DeltaKind.ENTER, "d"),
            (DeltaKind.MOVE, "a"),
        ]

    def test_replaying_deltas_reconstructs_the_new_ranking(self):
        old = [row("a", 0.1), row("b", 0.2), row("c", 0.3), row("d", 0.4)]
        new = [row("e", 0.01), row("c", 0.02), row("a", 0.5)]
        state = {r.poi_id: rank for rank, r in enumerate(old)}
        for delta in diff_topk(old, new):
            if delta.kind is DeltaKind.LEAVE:
                del state[delta.poi_id]
            else:
                state[delta.poi_id] = delta.rank
        assert sorted(state, key=state.get) == [r.poi_id for r in new]

    def test_describe_shapes(self):
        enter, = diff_topk([], [row("a", 0.25)])
        assert enter.describe() == {
            "kind": "enter",
            "poi_id": "a",
            "rank": 0,
            "score": 0.25,
        }
        leave, = diff_topk([row("a", 0.25)], [])
        assert leave.describe() == {
            "kind": "leave",
            "poi_id": "a",
            "old_rank": 0,
        }


class TestWindowUpdate:
    def make(self, answer):
        window = window_state(EpochClock(0.0, 7.0), 70.0, 3)
        return WindowUpdate(1, 0, window, answer, (), True)

    def test_exact_answer_is_not_degraded(self):
        update = self.make(RankedAnswer([row("a", 0.1)]))
        assert update.exact is True
        assert update.degraded is False

    def test_non_exact_answer_is_degraded(self):
        class Fake:
            rows = ()
            exact = False

        update = self.make(Fake())
        assert update.exact is False
        assert update.degraded is True
