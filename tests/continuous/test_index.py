"""The epoch -> POI inverted index behind window-slide candidates."""

from repro import POI
from repro.continuous import EpochIndex


class TestEpochIndex:
    def test_rebuild_indexes_every_positive_epoch(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        assert len(index) == len(half_tree)
        for poi_id in half_tree.poi_ids():
            tia = half_tree.poi_tia(poi_id)
            expected = {epoch for epoch, value in tia.items() if value > 0}
            for epoch in expected:
                assert poi_id in index.members([epoch])

    def test_members_unions_over_epochs(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        with_content = {
            poi_id
            for poi_id in half_tree.poi_ids()
            if any(v > 0 for _, v in half_tree.poi_tia(poi_id).items())
        }
        epochs = sorted(
            {
                epoch
                for poi_id in half_tree.poi_ids()
                for epoch, value in half_tree.poi_tia(poi_id).items()
                if value > 0
            }
        )
        assert index.members(epochs) == with_content
        assert index.members([]) == set()
        assert index.members([10**9]) == set()

    def test_refresh_tracks_a_digest(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        poi_id = sorted(half_tree.poi_ids())[0]
        epoch = max(
            (e for e, v in half_tree.poi_tia(poi_id).items() if v > 0),
            default=0,
        ) + 5
        assert poi_id not in index.members([epoch])
        half_tree.digest_epoch(epoch, {poi_id: 3})
        index.refresh(half_tree, poi_id)
        assert poi_id in index.members([epoch])

    def test_refresh_tracks_an_insert(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        half_tree.insert_poi(POI("fresh", 30.0, 25.0), {2: 4})
        index.refresh(half_tree, "fresh")
        assert "fresh" in index.members([2])

    def test_refresh_of_a_deleted_poi_discards_it(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        poi_id = sorted(half_tree.poi_ids())[0]
        epochs = [e for e, v in half_tree.poi_tia(poi_id).items() if v > 0]
        half_tree.delete_poi(poi_id)
        index.refresh(half_tree, poi_id)
        assert all(poi_id not in index.members([e]) for e in epochs)
        assert len(index) == len(half_tree)

    def test_discard_is_idempotent(self, half_tree):
        index = EpochIndex()
        index.rebuild(half_tree)
        poi_id = sorted(half_tree.poi_ids())[0]
        index.discard(poi_id)
        index.discard(poi_id)
        assert len(index) == len(half_tree) - 1
