"""Subscription ops on the JSON-lines wire: server-push delta frames.

A connection that subscribes receives, besides the normal one-line
response, unsolicited frames marked ``"push": "update"`` whenever a
digest advances its window — including digests issued by *other*
connections.  Closing the connection tears its subscriptions down.
"""

import json
import socket
import time

import pytest

from repro.service import JsonLineServer, QueryService, ServiceConfig

from tests.service.conftest import build_tree


@pytest.fixture
def served():
    tree = build_tree(pois=60, seed=11)
    service = QueryService(tree, config=ServiceConfig(linger=0.0))
    server = JsonLineServer(service).start()
    yield tree, server
    server.shutdown()
    service.close()


class Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.file = self.sock.makefile("rwb")

    def send(self, payload):
        self.file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def rpc(self, payload):
        """Round-trip skipping any push frames queued ahead of the ack."""
        self.send(payload)
        while True:
            frame = self.recv()
            if "push" not in frame:
                return frame

    def close(self):
        self.file.close()
        self.sock.close()


@pytest.fixture
def client(served):
    c = Client(served[1].address)
    yield c
    c.close()


def digest_payload(tree, weight=9):
    epoch = tree.clock.epoch_of(tree.current_time)
    ids = sorted(tree.poi_ids())[:8]
    return {
        "op": "digest",
        "epoch": epoch,
        "counts": [[poi_id, weight] for poi_id in ids],
    }


def subscribe(client, window=3, k=5):
    return client.rpc(
        {"op": "subscribe", "point": [10.0, 10.0], "window": window, "k": k}
    )


@pytest.mark.timeout(120)
class TestSubscribeOp:
    def test_response_shape(self, client):
        response = subscribe(client)
        assert response["ok"]
        assert response["seq"] == 0
        assert response["incremental"] is False
        assert response["degraded"] is False
        assert response["results"]
        assert len(response["deltas"]) == len(response["results"])
        assert all(d["kind"] == "enter" for d in response["deltas"])
        # The half-open epoch range [7, 10) is the trailing 3 epochs.
        assert response["window"]["epochs"] == [7, 10]

    def test_bad_window_is_rejected(self, client):
        response = client.rpc(
            {"op": "subscribe", "point": [1, 1], "window": 0}
        )
        assert response["ok"] is False
        assert response["code"] == "bad-request"
        assert "window_epochs" in response["error"]

    def test_subscribe_without_a_channel_is_bad_request(self, served):
        # Direct handle_request (no connection) cannot receive pushes.
        _, server = served
        response = server.handle_request(
            json.dumps({"op": "subscribe", "point": [1, 1], "window": 2})
        )
        assert response["ok"] is False
        assert response["code"] == "bad-request"


@pytest.mark.timeout(120)
class TestPushDelivery:
    def test_push_frames_interleave_with_digest_acks(self, served, client):
        tree, _ = served
        sub_id = subscribe(client)["subscription"]
        for seq in (1, 2, 3):
            client.send(digest_payload(tree))
            # The fan-out runs before the digest call returns, so the
            # push frame lands ahead of the ack on this connection.
            push = client.recv()
            assert push["push"] == "update"
            assert push["subscription"] == sub_id
            assert push["seq"] == seq
            assert push["results"]
            ack = client.recv()
            assert ack["ok"] and "push" not in ack

    def test_other_connections_digest_reaches_the_subscriber(
        self, served, client
    ):
        tree, server = served
        subscribe(client)
        writer = Client(server.address)
        try:
            assert writer.rpc(digest_payload(tree))["ok"]
            push = client.recv()  # unsolicited: no request outstanding
            assert push["push"] == "update"
            assert push["seq"] == 1
        finally:
            writer.close()

    def test_unsubscribe_stops_pushes(self, served, client):
        from repro.service.server import PROTO_VERSION

        tree, _ = served
        sub_id = subscribe(client)["subscription"]
        response = client.rpc({"op": "unsubscribe", "subscription": sub_id})
        assert response == {
            "ok": True, "unsubscribed": True, "proto": PROTO_VERSION,
        }
        response = client.rpc({"op": "unsubscribe", "subscription": sub_id})
        assert response == {
            "ok": True, "unsubscribed": False, "proto": PROTO_VERSION,
        }
        client.send(digest_payload(tree))
        assert "push" not in client.recv()  # the ack arrives first


@pytest.mark.timeout(120)
class TestChannelTeardown:
    def test_counts_in_health_and_stats(self, served, client):
        subscribe(client)
        subscribe(client, window=2)
        health = client.rpc({"op": "health"})["health"]
        assert health["subscriptions"] == 2
        stats = client.rpc({"op": "stats"})
        assert stats["stats"]["subscriptions"]["subscriptions.active"] == 2

    def test_closing_the_connection_unsubscribes(self, served, client):
        _, server = served
        other = Client(server.address)
        subscribe(other)
        assert client.rpc({"op": "health"})["health"]["subscriptions"] == 1
        # Close the makefile wrapper too: it holds the fd, and the
        # server only notices EOF once the fd actually closes.
        other.close()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.rpc({"op": "health"})["health"]["subscriptions"] == 0:
                break
            time.sleep(0.05)
        assert client.rpc({"op": "health"})["health"]["subscriptions"] == 0
