"""Fixtures for the continuous-subscription tests.

The session-scoped ``small_dataset`` comes from the root conftest; the
trees here are function-scoped because subscription tests mutate them
(digests, inserts, deletes) while sliding their windows.
"""

import pytest

from repro import TARTree
from repro.datasets.streaming import epoch_stream


@pytest.fixture
def half_tree(small_dataset):
    """A tree holding the leading 70% of the data set's history.

    The tail stays in ``small_dataset``, ready to be replayed one epoch
    at a time with :func:`replay` — the canonical driver for a sliding
    window.  (70%, not 50%: the effective-POI threshold needs most of a
    POI's history before it clears, and a 4-POI tree tests nothing.)
    """
    return TARTree.build(small_dataset.snapshot(0.7))


def replay(tree, dataset, limit=None):
    """Yield ``(epoch, counts)`` digests past the tree's current time."""
    stream = epoch_stream(
        dataset,
        tree.clock,
        start_time=tree.current_time,
        poi_ids=list(tree.poi_ids()),
    )
    for count, (epoch, counts) in enumerate(stream):
        if limit is not None and count >= limit:
            return
        yield epoch, counts
