"""QueryService-level standing subscriptions: digest fan-out under the
service's lock discipline, ops counters, and a sustained-write leg.
"""

import threading

import pytest

from repro import KNNTAQuery
from repro.continuous import window_state
from repro.service import QueryService, ServiceClosedError, ServiceConfig
from repro.temporal.tia import IntervalSemantics

from tests.service.conftest import build_tree


def one_shot(tree, point, window, k=10, alpha0=0.3,
             semantics=IntervalSemantics.INTERSECTS):
    state = window_state(tree.clock, tree.current_time, window, semantics)
    return tree.query(
        KNNTAQuery(point, state.interval, k=k, alpha0=alpha0,
                   semantics=semantics)
    )


def digest_epochs(tree, service, count, weight=5):
    """Digest ``count`` fresh epochs through the service."""
    ids = sorted(tree.poi_ids())[:10]
    for step in range(count):
        epoch = tree.clock.epoch_of(tree.current_time)
        service.digest(epoch, {poi_id: weight + step for poi_id in ids})


class TestServiceSubscribe:
    def test_initial_update_matches_one_shot_query(self):
        tree = build_tree(pois=60, seed=11)
        with QueryService(tree) as service:
            sub, initial = service.subscribe((10.0, 10.0), 3, k=5)
            assert initial.seq == 0
            assert list(initial.answer.rows) == list(
                one_shot(tree, (10.0, 10.0), 3, k=5)
            )
            assert service.unsubscribe(sub) is True
            assert service.unsubscribe(sub) is False

    def test_digest_pushes_seq_ordered_updates(self):
        tree = build_tree(pois=60, seed=11)
        pushed = []
        with QueryService(tree) as service:
            sub, _ = service.subscribe(
                (10.0, 10.0), 3, k=5, sink=pushed.append
            )
            digest_epochs(tree, service, 4)
            assert [u.seq for u in pushed] == list(
                range(1, len(pushed) + 1)
            )
            assert pushed  # window moved every digest
            assert list(sub.last_rows) == list(
                one_shot(tree, (10.0, 10.0), 3, k=5)
            )

    def test_semantics_passes_through(self):
        tree = build_tree(pois=60, seed=11)
        with QueryService(tree) as service:
            _, initial = service.subscribe(
                (10.0, 10.0), 4, k=3, semantics=IntervalSemantics.CONTAINED
            )
            assert list(initial.answer.rows) == list(
                one_shot(tree, (10.0, 10.0), 4, k=3,
                         semantics=IntervalSemantics.CONTAINED)
            )

    def test_stats_and_health_report_subscription_counts(self):
        tree = build_tree(pois=40, seed=5)
        with QueryService(tree) as service:
            assert service.health()["subscriptions"] == 0
            sub, _ = service.subscribe((10.0, 10.0), 3)
            service.subscribe((5.0, 15.0), 2)
            counters = service.stats()["subscriptions"]
            assert counters["subscriptions.active"] == 2
            assert counters["subscriptions.total"] == 2
            assert service.health()["subscriptions"] == 2
            service.unsubscribe(sub)
            assert service.health()["subscriptions"] == 1

    def test_subscribe_after_close_raises(self):
        tree = build_tree(pois=40, seed=5)
        service = QueryService(tree)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.subscribe((10.0, 10.0), 3)

    def test_close_drops_live_subscriptions(self):
        tree = build_tree(pois=40, seed=5)
        pushed = []
        service = QueryService(tree)
        service.subscribe((10.0, 10.0), 3, sink=pushed.append)
        service.close()
        assert service.health()["subscriptions"] == 0
        # A post-close tree mutation must not reach the dead registry.
        tree.digest_epoch(tree.clock.epoch_of(tree.current_time), {0: 3})
        assert pushed == []


@pytest.mark.timeout(300)
def test_sustained_writes_fan_out_consistently():
    """One writer digests epochs while readers query: every subscriber
    sees a gap-free seq stream and finishes at the canonical answer.
    """
    tree = build_tree(pois=120, seed=3)
    service = QueryService(tree, config=ServiceConfig(workers=3))
    specs = [((10.0, 10.0), 3, 8), ((4.0, 16.0), 2, 5), ((15.0, 5.0), 5, 10)]
    streams = [[] for _ in specs]
    subs = [
        service.subscribe(point, window, k=k, sink=streams[i].append)[0]
        for i, (point, window, k) in enumerate(specs)
    ]
    errors = []
    stop = threading.Event()

    def writer():
        try:
            digest_epochs(tree, service, 30)
        except Exception as exc:  # noqa: BLE001 - surfaced via `errors`
            errors.append(exc)
        finally:
            stop.set()

    def reader():
        try:
            while not stop.is_set():
                state = window_state(tree.clock, tree.current_time, 3)
                service.query(
                    KNNTAQuery((10.0, 10.0), state.interval, k=8),
                    timeout=60,
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via `errors`
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=240)
    try:
        assert not errors
        for sub, updates, (point, window, k) in zip(subs, streams, specs):
            # Gap-free, ordered delivery despite concurrent readers.
            assert [u.seq for u in updates] == list(
                range(1, len(updates) + 1)
            )
            assert len(updates) >= 25  # nearly every digest moved a window
            assert list(sub.last_rows) == list(
                one_shot(tree, point, window, k=k)
            )
        counters = service.stats()["subscriptions"]
        assert counters["evals.errors"] == 0
        assert counters["deliveries.failed"] == 0
    finally:
        service.close()
