"""SubscriptionRegistry lifecycle: observers, pushes, counters, teardown."""

import pytest

from repro import KNNTAQuery, POI, SubscriptionRegistry
from repro.temporal.tia import IntervalSemantics

from tests.continuous.conftest import replay


def one_shot(tree, point, window, k=10, alpha0=0.3,
             semantics=IntervalSemantics.INTERSECTS):
    """The one-shot query a subscription's pushed state must equal."""
    from repro.continuous import window_state

    state = window_state(tree.clock, tree.current_time, window, semantics)
    return tree.query(
        KNNTAQuery(point, state.interval, k=k, alpha0=alpha0,
                   semantics=semantics)
    )


class TestSubscribe:
    def test_initial_update_is_the_one_shot_answer(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        sub, initial = registry.subscribe((40.0, 40.0), 3, k=5)
        assert initial.seq == 0
        assert initial.incremental is False
        assert list(initial.answer.rows) == list(
            one_shot(half_tree, (40.0, 40.0), 3, k=5)
        )
        assert all(d.kind.value == "enter" for d in initial.deltas)
        assert len(initial.deltas) == len(initial.answer.rows)

    def test_initial_update_is_returned_not_pushed(self, half_tree):
        pushed = []
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3, sink=pushed.append)
        assert pushed == []

    def test_ids_are_unique_and_monotonic(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        first, _ = registry.subscribe((40.0, 40.0), 3)
        second, _ = registry.subscribe((10.0, 10.0), 2)
        assert second.id > first.id
        assert registry.subscription_ids() == [first.id, second.id]
        assert len(registry) == 2

    def test_subscribe_after_close_raises(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        registry.close()
        with pytest.raises(RuntimeError):
            registry.subscribe((40.0, 40.0), 3)


class TestAdvance:
    def test_no_mutation_no_push(self, half_tree):
        pushed = []
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3, sink=pushed.append)
        assert registry.advance() == []
        assert pushed == []

    def test_digest_stream_pushes_in_seq_order(self, half_tree, small_dataset):
        pushed = []
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3, k=5, sink=pushed.append)
        for epoch, counts in replay(half_tree, small_dataset, limit=8):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
        assert pushed
        assert [update.seq for update in pushed] == list(
            range(1, len(pushed) + 1)
        )

    def test_in_window_digest_pushes_without_a_window_move(self, half_tree):
        # Digest into a PAST in-window epoch: the window interval is
        # unchanged (current_time does not advance) but a score moved,
        # so an update must still go out.
        pushed = []
        registry = SubscriptionRegistry(half_tree)
        sub, initial = registry.subscribe((40.0, 40.0), 3, k=3)
        sub.sink = pushed.append
        top = initial.answer.rows[0].poi_id
        epoch = half_tree.clock.epoch_of(half_tree.current_time) - 1
        assert epoch in initial.window.epochs
        before = half_tree.current_time
        half_tree.digest_epoch(epoch, {top: 50})
        assert half_tree.current_time == before
        updates = registry.advance()
        assert len(updates) == 1
        assert pushed == updates
        assert updates[0].window == initial.window

    def test_pushed_rows_match_one_shot_query(self, half_tree, small_dataset):
        registry = SubscriptionRegistry(half_tree)
        sub, _ = registry.subscribe((40.0, 40.0), 3, k=5)
        for epoch, counts in replay(half_tree, small_dataset, limit=6):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
            assert list(sub.last_rows) == list(
                one_shot(half_tree, (40.0, 40.0), 3, k=5)
            )

    def test_incremental_path_actually_runs(self, half_tree, small_dataset):
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3, k=5)
        for epoch, counts in replay(half_tree, small_dataset, limit=8):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
        counters = registry.counters()
        assert counters["evals.incremental"] > 0

    def test_unsubscribed_sink_receives_nothing(self, half_tree, small_dataset):
        pushed = []
        registry = SubscriptionRegistry(half_tree)
        sub, _ = registry.subscribe((40.0, 40.0), 3, sink=pushed.append)
        assert registry.unsubscribe(sub) is True
        assert registry.unsubscribe(sub.id) is False
        for epoch, counts in replay(half_tree, small_dataset, limit=3):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
        assert pushed == []

    def test_raising_sink_is_counted_not_fatal(self, half_tree, small_dataset):
        registry = SubscriptionRegistry(half_tree)

        def explode(update):
            raise RuntimeError("subscriber bug")

        sub, _ = registry.subscribe((40.0, 40.0), 3, sink=explode)
        for epoch, counts in replay(half_tree, small_dataset, limit=4):
            half_tree.digest_epoch(epoch, counts)
            updates = registry.advance()
            assert updates  # delivery failure does not suppress the update
        counters = registry.counters()
        assert counters["deliveries.failed"] > 0
        assert sub.seq > 1

    def test_delete_of_a_ranked_poi_is_reflected(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        sub, initial = registry.subscribe((40.0, 40.0), 6, k=3)
        victim = initial.answer.rows[0].poi_id
        half_tree.delete_poi(victim)
        updates = registry.advance()
        assert len(updates) == 1
        assert victim not in {row.poi_id for row in sub.last_rows}
        assert list(sub.last_rows) == list(one_shot(half_tree, (40.0, 40.0), 6, k=3))

    def test_insert_that_cracks_the_frontier_is_reflected(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        sub, _ = registry.subscribe((40.0, 40.0), 6, k=3)
        epoch = half_tree.clock.epoch_of(half_tree.current_time)
        half_tree.insert_poi(POI("crasher", 40.0, 40.0), {epoch: 10**6})
        registry.advance()
        assert sub.last_rows[0].poi_id == "crasher"
        assert list(sub.last_rows) == list(one_shot(half_tree, (40.0, 40.0), 6, k=3))

    def test_dirty_set_survives_a_subscriberless_gap(self, half_tree):
        # Regression: mutations between "last unsubscribe" and "next
        # subscribe" must still refresh the epoch index on the next
        # advance (the early return must not drain the dirty set).
        registry = SubscriptionRegistry(half_tree)
        sub, _ = registry.subscribe((40.0, 40.0), 3)
        registry.unsubscribe(sub)
        poi_id = sorted(half_tree.poi_ids())[0]
        epoch = half_tree.clock.epoch_of(half_tree.current_time) + 2
        half_tree.digest_epoch(epoch, {poi_id: 7})
        assert registry.advance() == []  # no subscribers: nothing evaluated
        sub2, _ = registry.subscribe((40.0, 40.0), 3)
        registry.advance()
        assert poi_id in registry._index.members([epoch])


class TestCounters:
    def test_counters_shape_and_monotonicity(self, half_tree, small_dataset):
        registry = SubscriptionRegistry(half_tree)
        assert registry.counters() == {
            "subscriptions.active": 0,
            "subscriptions.total": 0,
            "updates.delivered": 0,
            "evals.incremental": 0,
            "evals.fresh": 0,
            "evals.errors": 0,
            "deliveries.failed": 0,
        }
        sub, _ = registry.subscribe((40.0, 40.0), 3)
        for epoch, counts in replay(half_tree, small_dataset, limit=4):
            half_tree.digest_epoch(epoch, counts)
            registry.advance()
        counters = registry.counters()
        assert counters["subscriptions.active"] == 1
        assert counters["subscriptions.total"] == 1
        assert counters["updates.delivered"] > 0
        assert (
            counters["evals.incremental"] + counters["evals.fresh"]
            >= counters["updates.delivered"]
        )
        registry.unsubscribe(sub)
        after = registry.counters()
        assert after["subscriptions.active"] == 0
        assert after["subscriptions.total"] == 1


class TestClose:
    def test_close_detaches_observers_and_drops_subscriptions(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3)
        assert half_tree.remove_mutation_observer(registry._observe) is True
        half_tree.add_mutation_observer(registry._observe)
        registry.close()
        assert len(registry) == 0
        assert half_tree.remove_mutation_observer(registry._observe) is False

    def test_close_is_idempotent_and_advance_is_inert(self, half_tree):
        registry = SubscriptionRegistry(half_tree)
        registry.subscribe((40.0, 40.0), 3)
        registry.close()
        registry.close()
        assert registry.advance() == []
