"""Property test: sharded kNNTA answers equal the single-tree answers.

The coordinator's exactness claim (docs/CLUSTER.md) is that for every
query the scatter-gather result — ids, scores, distances, aggregates
and order — is *identical* to the one tree built over the same data,
because every shard shares the cluster-level normaliser and the
per-shard bound only ever skips shards that provably cannot reach the
top-k.  This file checks that claim across randomized datasets, shard
counts, planning methods, alphas, k values, intervals and semantics.
"""

import random

import pytest

from repro import (
    ClusterTree,
    IntervalSemantics,
    KNNTAQuery,
    TARTree,
    TimeInterval,
    datasets,
)

DATASET_CONFIGS = [
    ("NYC", 0.02, 7),
    ("LA", 0.01, 3),
    ("GS", 0.05, 11),
]

SHARD_CONFIGS = [(2, "kd"), (4, "kd"), (4, "grid"), (7, "kd")]


def random_queries(tree, rng, count=12):
    """A seeded spread over point, k, alpha0, interval and semantics."""
    end = tree.current_time
    world = tree.world
    queries = []
    for _ in range(count):
        point = (
            rng.uniform(world.lows[0], world.highs[0]),
            rng.uniform(world.lows[1], world.highs[1]),
        )
        span = rng.uniform(7.0, 120.0)
        offset = rng.uniform(0.0, 200.0)
        interval = TimeInterval(max(0.0, end - offset - span), end - offset)
        queries.append(
            KNNTAQuery(
                point,
                interval,
                k=rng.choice([1, 3, 5, 10, 25]),
                alpha0=rng.choice([0.05, 0.3, 0.5, 0.7, 0.95]),
                semantics=rng.choice(
                    [IntervalSemantics.INTERSECTS, IntervalSemantics.CONTAINED]
                ),
            )
        )
    return queries


@pytest.mark.parametrize(
    "preset,scale,seed", DATASET_CONFIGS, ids=[c[0] for c in DATASET_CONFIGS]
)
def test_sharded_answers_equal_single_tree(preset, scale, seed):
    data = datasets.make(preset, scale=scale, seed=seed)
    single = TARTree.build(data)
    rng = random.Random(seed * 31 + 1)
    for num_shards, method in SHARD_CONFIGS:
        cluster = ClusterTree.build(data, num_shards=num_shards, method=method)
        for query in random_queries(single, rng):
            expected = single.query(query)
            got = cluster.query(query)
            # Full tuple equality: poi_id, score, distance, aggregate,
            # in order.  Scores must be bit-identical, not approximate —
            # both sides evaluate the same normalised expression per POI.
            assert got == expected, (
                "mismatch: %s shards=%d method=%s query=%r"
                % (preset, num_shards, method, query)
            )


def test_sharded_batches_equal_single_tree():
    data = datasets.make("NYC", scale=0.02, seed=7)
    single = TARTree.build(data)
    cluster = ClusterTree.build(data, num_shards=4)
    rng = random.Random(99)
    queries = random_queries(single, rng, count=10)
    expected = [single.query(query) for query in queries]
    assert cluster.query_batch(queries) == expected


def test_parallel_scatter_equals_single_tree():
    data = datasets.make("GS", scale=0.05, seed=11)
    single = TARTree.build(data)
    cluster = ClusterTree.build(data, num_shards=5, parallelism=3)
    rng = random.Random(5)
    for query in random_queries(single, rng, count=10):
        assert cluster.query(query) == single.query(query)


def test_packed_frames_do_not_change_cluster_answers():
    """Scatter-gather over packed shards equals frames-disabled shards."""
    data = datasets.make("NYC", scale=0.02, seed=7)
    packed = ClusterTree.build(data, num_shards=4)
    plain = ClusterTree.build(data, num_shards=4)
    for shard in plain.shards:
        shard.tree.frames.disable()
    rng = random.Random(17)
    for query in random_queries(packed, rng, count=12):
        assert packed.query(query) == plain.query(query)
    queries = random_queries(packed, rng, count=6)
    assert packed.query_batch(queries) == plain.query_batch(queries)


def test_equivalence_survives_mutation_stream():
    """Random routed inserts/deletes/digests keep the answers identical."""
    data = datasets.make("NYC", scale=0.02, seed=13)
    single = TARTree.build(data)
    cluster = ClusterTree.build(data, num_shards=3)
    rng = random.Random(42)
    from repro import POI

    next_id = 0
    for step in range(40):
        action = rng.random()
        if action < 0.4:
            x = rng.uniform(cluster.world.lows[0], cluster.world.highs[0])
            y = rng.uniform(cluster.world.lows[1], cluster.world.highs[1])
            poi = POI("mut-%d" % next_id, x, y)
            next_id += 1
            history = {e: rng.randint(1, 5) for e in range(rng.randint(0, 3))}
            cluster.insert_poi(poi, dict(history))
            single.insert_poi(poi, dict(history))
        elif action < 0.6:
            ids = sorted(map(str, single.poi_ids()))
            if ids:
                victim_key = rng.choice(ids)
                victim = next(
                    poi_id
                    for poi_id in single.poi_ids()
                    if str(poi_id) == victim_key
                )
                assert cluster.delete_poi(victim) == single.delete_poi(victim)
        else:
            ids = list(single.poi_ids())
            epoch = cluster.clock.epoch_of(cluster.current_time) + (step % 2)
            batch = {
                poi_id: rng.randint(1, 4)
                for poi_id in rng.sample(ids, min(5, len(ids)))
            }
            cluster.digest_epoch(epoch, dict(batch))
            single.digest_epoch(epoch, dict(batch))
        if step % 8 == 7:
            for query in random_queries(single, rng, count=3):
                assert cluster.query(query) == single.query(query)
    assert len(cluster) == len(single)
