"""The fault-domain layer: breakers, guards, bounds, degraded answers."""

import threading
import time

import pytest

from repro import (
    ClusterDegradedError,
    ClusterTree,
    DegradedAnswer,
    KNNTAQuery,
    ResilienceConfig,
    TARTree,
    TimeInterval,
)
from repro.cluster import save_cluster, open_cluster
from repro.cluster.resilience import (
    CALLER,
    CLOSED,
    FATAL,
    HALF_OPEN,
    OPEN,
    TRANSIENT,
    CallToken,
    CircuitBreaker,
    ShardCallTimeout,
    ShardDownError,
    ShardGuard,
    classify_error,
)
from repro.core.knnta import knnta_search
from repro.reliability.faults import (
    FatalFaultError,
    FaultInjector,
    TransientIOError,
    constant,
    first_n,
)

NO_SLEEP = ResilienceConfig(sleep=lambda _: None)


def fast_config(**kwargs):
    kwargs.setdefault("sleep", lambda _: None)
    return ResilienceConfig(**kwargs)


def trailing_query(tree, days=28.0, k=10, alpha0=0.3, point=(0.4, 0.6)):
    end = tree.current_time
    return KNNTAQuery(point, TimeInterval(end - days, end), k=k, alpha0=alpha0)


class TestClassification:
    def test_transient_io_error_is_transient(self):
        assert classify_error(TransientIOError("x")) == TRANSIENT

    def test_timeout_is_transient(self):
        assert classify_error(ShardCallTimeout(0, "shard.0.query", "x")) == TRANSIENT

    def test_breaker_rejection_is_fatal(self):
        assert classify_error(ShardDownError(0, "shard.0.query", "x")) == FATAL

    def test_caller_errors_never_penalise_the_shard(self):
        for exc in (ValueError("v"), KeyError("k"), IndexError("i"), TypeError("t")):
            assert classify_error(exc) == CALLER

    def test_everything_else_is_fatal(self):
        assert classify_error(FatalFaultError("boom")) == FATAL
        assert classify_error(RuntimeError("boom")) == FATAL


class TestResilienceConfig:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            ResilienceConfig(call_timeout=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)

    def test_rejects_degenerate_breaker_schedule(self):
        with pytest.raises(ValueError):
            ResilienceConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(probe_after=0)
        with pytest.raises(ValueError):
            ResilienceConfig(probe_successes=0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_transient_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_fatal_opens_immediately_and_flags_recovery(self):
        breaker = CircuitBreaker(failure_threshold=10)
        breaker.record_failure(fatal=True)
        assert breaker.state == OPEN
        assert breaker.needs_recovery

    def test_open_rejects_then_admits_a_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=3)
        breaker.record_failure()
        rejections = [breaker.allow() for _ in range(3)]
        assert rejections == [False, False, False]
        assert breaker.rejected == 3
        assert breaker.allow() is True  # the probe
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_one_probe_at_a_time(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=1)
        breaker.record_failure()
        breaker.allow()  # rejected (count 1)
        assert breaker.allow() is True  # probe in flight
        assert breaker.allow() is False  # second concurrent probe rejected

    def test_probe_successes_close_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=1, probe_successes=2)
        breaker.record_failure()
        for _ in range(2):
            while not breaker.allow():
                pass
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=1)
        breaker.record_failure()
        while not breaker.allow():
            pass
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2

    def test_fatal_breaker_never_self_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=1)
        breaker.record_failure(fatal=True)
        assert not any(breaker.allow() for _ in range(50))

    def test_readmit_moves_to_half_open_and_probes_decide(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_after=1, probe_successes=1)
        breaker.record_failure(fatal=True)
        breaker.readmit()
        assert breaker.state == HALF_OPEN
        assert not breaker.needs_recovery
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_snapshot_is_json_ready(self):
        breaker = CircuitBreaker()
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED
        assert snapshot["failures"] == 1
        assert snapshot["needs_recovery"] is False

    def test_transition_callback_fires(self):
        seen = []
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.on_transition = seen.append
        breaker.record_failure()
        assert seen == [OPEN]


class TestShardGuard:
    def test_transient_fault_is_retried_to_success(self):
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.query", schedule=first_n(2))
        guard = ShardGuard(0, fast_config(max_retries=2), injector=injector)
        assert guard.call("query", lambda token: 42) == 42
        assert guard.retries == 2
        assert guard.breaker.state == CLOSED

    def test_transient_faults_beyond_the_retry_budget_raise(self):
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.query", schedule=constant(1.0))
        guard = ShardGuard(0, fast_config(max_retries=2), injector=injector)
        with pytest.raises(TransientIOError):
            guard.call("query", lambda token: 42)
        assert guard.breaker.consecutive_failures == 1

    def test_mutations_are_never_retried_inline(self):
        # A mutation that failed after its WAL append is not idempotent:
        # a blind re-run would append the record again.  The WAL is the
        # mutation's source of truth; the guard surfaces the error.
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.mutate", schedule=first_n(1))
        guard = ShardGuard(0, fast_config(max_retries=5), injector=injector)
        with pytest.raises(TransientIOError):
            guard.call("mutate", lambda token: 42)
        assert guard.retries == 0

    def test_fatal_fault_opens_the_breaker_immediately(self):
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.query", schedule=constant(1.0), kind="fatal")
        guard = ShardGuard(0, fast_config(), injector=injector)
        with pytest.raises(FatalFaultError):
            guard.call("query", lambda token: 42)
        assert guard.breaker.state == OPEN
        assert guard.breaker.needs_recovery

    def test_open_breaker_rejects_without_dispatching(self):
        injector = FaultInjector(seed=0)
        injector.configure("shard.0.query", schedule=first_n(1), kind="fatal")
        guard = ShardGuard(0, fast_config(), injector=injector)
        with pytest.raises(FatalFaultError):
            guard.call("query", lambda token: 42)
        ran = []
        with pytest.raises(ShardDownError):
            guard.call("query", lambda token: ran.append(1))
        assert ran == []

    def test_caller_errors_propagate_without_breaker_penalty(self):
        guard = ShardGuard(0, fast_config(failure_threshold=1))

        def bad_request(token):
            raise KeyError("unknown poi")

        with pytest.raises(KeyError):
            guard.call("query", bad_request)
        assert guard.breaker.state == CLOSED
        assert guard.breaker.failures == 0

    def test_timeout_raises_and_is_not_retried(self):
        release = threading.Event()
        attempts = []

        def stall(token):
            attempts.append(1)
            release.wait(5.0)
            return 42

        guard = ShardGuard(0, fast_config(call_timeout=0.05, max_retries=3))
        try:
            with pytest.raises(ShardCallTimeout):
                guard.call("query", stall)
            assert guard.timeouts == 1
            assert guard.retries == 0
            assert len(attempts) == 1
        finally:
            release.set()
            guard.close()

    def test_abandoned_token_aborts_a_late_mutation(self):
        token = CallToken()
        token.check()  # live: no-op
        token.abandoned = True
        from repro.cluster.resilience import _AbandonedCall

        with pytest.raises(_AbandonedCall):
            token.check()

    def test_open_kind_bypasses_the_breaker(self):
        guard = ShardGuard(0, fast_config())
        guard.breaker.record_failure(fatal=True)
        assert guard.call("open", lambda token: "recovered") == "recovered"
        # The bypass also leaves breaker accounting untouched.
        assert guard.breaker.state == OPEN

    def test_health_events_stream_transitions_and_timeouts(self):
        events = []
        injector = FaultInjector(seed=0)
        injector.configure("shard.3.query", schedule=constant(1.0), kind="fatal")
        guard = ShardGuard(
            3, fast_config(), injector=injector, on_event=events.append
        )
        with pytest.raises(FatalFaultError):
            guard.call("query", lambda token: 42)
        kinds = [event.kind for event in events]
        assert "breaker-open" in kinds
        assert "shard-error" in kinds
        assert all(event.shard == 3 for event in events)

    def test_snapshot_reports_guard_counters(self):
        guard = ShardGuard(0, fast_config())
        guard.call("query", lambda token: 1)
        snapshot = guard.snapshot()
        assert snapshot["calls"] == 1
        assert snapshot["state"] == CLOSED

    def test_backoff_is_deterministic_under_seed(self):
        a = ShardGuard(0, fast_config(seed=7))
        b = ShardGuard(0, fast_config(seed=7))
        assert [a._backoff(i) for i in range(4)] == [
            b._backoff(i) for i in range(4)
        ]


class TestShardDescriptor:
    def test_bound_underestimates_every_shard_result(self, small_dataset):
        cluster = ClusterTree.build(small_dataset, num_shards=4)
        query = trailing_query(cluster, k=5, alpha0=0.5)
        normalizer = cluster.normalizer(query.interval, query.semantics)
        for shard in cluster.shards:
            bound = cluster._shard_bound(shard, query, normalizer)
            if bound is None:
                assert len(shard.tree) == 0
                continue
            results = knnta_search(shard.tree, query, normalizer=normalizer)
            assert all(result.score >= bound - 1e-9 for result in results)

    def test_descriptor_refreshes_after_routed_mutations(self, small_dataset):
        from repro import POI

        cluster = ClusterTree.build(small_dataset, num_shards=3)
        poi = POI("fresh-bound", 30.0, 25.0)
        cluster.insert_poi(poi, {0: 7})
        owner = cluster._owner_of("fresh-bound")
        descriptor = cluster._descriptors[owner.index]
        assert descriptor.fresh
        assert descriptor.pois == len(owner.tree)
        assert descriptor.epoch_max == dict(owner.tree.global_epoch_max())

    def test_cluster_normalization_never_touches_shard_trees(self, small_dataset):
        # global_epoch_max is served from the descriptors: identical to
        # the merged live view, with zero shard-tree calls on the way.
        cluster = ClusterTree.build(small_dataset, num_shards=3)
        single = TARTree.build(small_dataset)
        assert cluster.global_epoch_max() == single.global_epoch_max()


class TestDegradedAnswer:
    def build(self):
        return DegradedAnswer(["r0", "r1"], (2,), 0.75, 0.125)

    def test_behaves_as_the_result_sequence(self):
        answer = self.build()
        assert list(answer) == ["r0", "r1"]
        assert len(answer) == 2
        assert answer[0] == "r0"
        assert answer[:1] == ["r0"]

    def test_carries_the_degradation_evidence(self):
        answer = self.build()
        assert answer.degraded is True
        assert answer.missed_shards == (2,)
        assert answer.coverage == 0.75
        assert answer.score_bound == 0.125

    def test_plain_lists_are_not_degraded(self):
        assert getattr([], "degraded", False) is False


def kill_shard(injector, index, kind="fatal"):
    for site in ("query", "mutate", "scrub"):
        injector.configure(
            "shard.%d.%s" % (index, site), schedule=constant(1.0), kind=kind
        )


def revive_shard(injector, index):
    for site in ("query", "mutate", "scrub"):
        injector.disarm("shard.%d.%s" % (index, site))


class TestDegradationPolicy:
    def owner_of_top_result(self, cluster, query):
        oracle = TARTree_oracle_top(cluster, query)
        point = cluster.poi(oracle).point
        index = cluster.plan.route(point)
        assert index is not None
        return index

    def test_strict_default_raises_when_a_blocking_shard_is_down(
        self, small_dataset
    ):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset, num_shards=4, resilience=NO_SLEEP, injector=injector
        )
        query = trailing_query(cluster, k=10)
        victim = self.owner_of_top_result(cluster, query)
        kill_shard(injector, victim)
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.query(query)
        assert victim in excinfo.value.missed_shards
        assert 0.0 < excinfo.value.coverage < 1.0
        assert excinfo.value.score_bound is not None

    def test_allow_degraded_returns_a_bounded_answer(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=4,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        single = TARTree.build(small_dataset)
        query = trailing_query(cluster, k=10)
        victim = self.owner_of_top_result(cluster, query)
        kill_shard(injector, victim)
        answer = cluster.query(query)
        assert isinstance(answer, DegradedAnswer)
        assert answer.missed_shards == (victim,)
        assert answer.coverage == pytest.approx(0.75)
        # The certificate: every returned row scoring strictly below the
        # bound is definitively ranked — it must match the oracle row.
        oracle = single.query(query)
        for position, row in enumerate(answer):
            if row.score < answer.score_bound - 1e-9:
                assert row == oracle[position]

    def test_per_call_override_beats_the_cluster_default(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset, num_shards=4, resilience=NO_SLEEP, injector=injector
        )
        query = trailing_query(cluster, k=10)
        victim = self.owner_of_top_result(cluster, query)
        kill_shard(injector, victim)
        answer = cluster.query(query, allow_degraded=True)
        assert isinstance(answer, DegradedAnswer)
        with pytest.raises(ClusterDegradedError):
            cluster.query(query, allow_degraded=False)

    def test_down_but_irrelevant_shard_leaves_the_answer_exact(
        self, small_dataset
    ):
        # Distance-dominant query with a small k: the shard farthest
        # from the query point cannot beat the k-th score, so its death
        # is certified harmless and the answer stays provably exact.
        # Parallel dispatch submits every shard before the k-th score
        # tightens, so the far shard actually fails (sequential order
        # would prune it before dispatch).
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=4,
            parallelism=4,
            resilience=NO_SLEEP,
            injector=injector,
        )
        single = TARTree.build(small_dataset)
        query = trailing_query(cluster, k=2, alpha0=0.95)
        normalizer = cluster.normalizer(query.interval, query.semantics)
        bounds = {
            shard.index: cluster._shard_bound(shard, query, normalizer)
            for shard in cluster.shards
        }
        victim = max(
            (index for index, bound in bounds.items() if bound is not None),
            key=lambda index: bounds[index],
        )
        kill_shard(injector, victim)
        results = cluster.query(query)  # strict policy: would raise if unproven
        assert not isinstance(results, DegradedAnswer)
        assert results == single.query(query)
        counters = cluster.counters()
        assert counters["certified_exact"] >= 1
        assert counters["shards.failed"] >= 1

    def test_explain_reports_the_fault_domain_outcome(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=4,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        query = trailing_query(cluster, k=10)
        victim = self.owner_of_top_result(cluster, query)
        kill_shard(injector, victim)
        _, cost = cluster.explain(query)
        assert cost["shards.failed"] == 1
        assert cost["shards.down"] == 1
        assert cost["shards.certified"] in (0, 1)

    def test_query_batch_applies_the_policy_per_query(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=4,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        single = TARTree.build(small_dataset)
        end = cluster.current_time
        queries = [
            KNNTAQuery((0.1 * i, 0.5), TimeInterval(end - 28, end), k=5)
            for i in range(4)
        ]
        victim = self.owner_of_top_result(cluster, queries[0])
        kill_shard(injector, victim)
        answers = cluster.query_batch(queries)
        assert len(answers) == len(queries)
        for query, answer in zip(queries, answers):
            oracle = single.query(query)
            if isinstance(answer, DegradedAnswer):
                for position, row in enumerate(answer):
                    if row.score < answer.score_bound - 1e-9:
                        assert row == oracle[position]
            else:
                assert answer == oracle

    def test_mutation_to_a_down_shard_raises_shard_down(self, small_dataset):
        from repro import POI

        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset, num_shards=3, resilience=NO_SLEEP, injector=injector
        )
        poi = POI("blocked", 30.0, 25.0)
        victim = cluster.plan.route((30.0, 25.0))
        kill_shard(injector, victim)
        with pytest.raises(FatalFaultError):
            cluster.insert_poi(poi)
        with pytest.raises(ShardDownError):
            cluster.insert_poi(poi)
        assert "blocked" not in cluster


def TARTree_oracle_top(cluster, query):
    """poi_id of the oracle top-1 row, computed cluster-side (exact)."""
    from repro.core.scan import sequential_scan

    return sequential_scan(cluster, query)[0].poi_id


class TestOnlineRecovery:
    def durable_cluster(self, small_dataset, tmp_path, **kwargs):
        built = ClusterTree.build(small_dataset, num_shards=3)
        save_cluster(built, str(tmp_path / "c"))
        built.close()
        kwargs.setdefault("resilience", NO_SLEEP)
        return open_cluster(str(tmp_path / "c"), **kwargs)

    def test_recovered_shard_serves_bit_identical_answers(
        self, small_dataset, tmp_path
    ):
        injector = FaultInjector(seed=0)
        cluster = self.durable_cluster(
            small_dataset, tmp_path, injector=injector, allow_degraded=True
        )
        try:
            query = trailing_query(cluster, k=10)
            before = cluster.query(query)
            assert not isinstance(before, DegradedAnswer)
            victim = cluster.plan.route(cluster.poi(before[0].poi_id).point)
            kill_shard(injector, victim)
            degraded = cluster.query(query)
            assert isinstance(degraded, DegradedAnswer)
            revive_shard(injector, victim)
            cluster.recover_shard(victim)
            after = cluster.query(query)
            assert not isinstance(after, DegradedAnswer)
            assert after == before
            assert cluster.counters()["recoveries"] == 1
        finally:
            cluster.close()

    def test_readmission_goes_through_half_open_probes(
        self, small_dataset, tmp_path
    ):
        injector = FaultInjector(seed=0)
        resilience = ResilienceConfig(
            sleep=lambda _: None, probe_successes=2, probe_after=1
        )
        cluster = self.durable_cluster(
            small_dataset,
            tmp_path,
            injector=injector,
            allow_degraded=True,
            resilience=resilience,
        )
        try:
            query = trailing_query(cluster, k=10)
            victim = cluster.plan.route(
                cluster.poi(cluster.query(query)[0].poi_id).point
            )
            kill_shard(injector, victim)
            cluster.query(query)
            revive_shard(injector, victim)
            cluster.recover_shard(victim)
            guard = cluster._guards[victim]
            assert guard.breaker.state == HALF_OPEN
            cluster.query(query)
            cluster.query(query)
            assert guard.breaker.state == CLOSED
        finally:
            cluster.close()

    def test_scrub_tick_drives_recovery_automatically(
        self, small_dataset, tmp_path
    ):
        injector = FaultInjector(seed=0)
        cluster = self.durable_cluster(
            small_dataset, tmp_path, injector=injector, allow_degraded=True
        )
        try:
            query = trailing_query(cluster, k=10)
            victim = cluster.plan.route(
                cluster.poi(cluster.query(query)[0].poi_id).point
            )
            kill_shard(injector, victim)
            cluster.query(query)
            assert cluster._guards[victim].breaker.needs_recovery
            revive_shard(injector, victim)
            for _ in range(2 * len(cluster.shards)):
                cluster.scrub_tick(budget=8)
                if cluster.counters()["recoveries"]:
                    break
            assert cluster.counters()["recoveries"] == 1
            assert not cluster._guards[victim].breaker.needs_recovery
        finally:
            cluster.close()

    def test_recovery_without_durable_state_raises(self, small_dataset):
        from repro import ClusterStateError

        cluster = ClusterTree.build(small_dataset, num_shards=2)
        with pytest.raises(ClusterStateError):
            cluster.recover_shard(0)

    def test_mutations_survive_kill_and_recovery(self, small_dataset, tmp_path):
        from repro import POI

        injector = FaultInjector(seed=0)
        cluster = self.durable_cluster(
            small_dataset, tmp_path, injector=injector, allow_degraded=True
        )
        try:
            poi = POI("durable-row", 30.0, 25.0)
            cluster.insert_poi(poi, {0: 5})
            victim = cluster.plan.route((30.0, 25.0))
            kill_shard(injector, victim)
            query = trailing_query(cluster, k=10)
            cluster.query(query)
            revive_shard(injector, victim)
            cluster.recover_shard(victim)
            assert "durable-row" in cluster
            assert cluster.poi("durable-row").point == (30.0, 25.0)
        finally:
            cluster.close()


class TestHealthSurface:
    def test_health_reports_per_shard_state_and_events(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=3,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        query = trailing_query(cluster, k=10)
        victim = cluster.plan.route(
            cluster.poi(cluster.query(query)[0].poi_id).point
        )
        kill_shard(injector, victim)
        cluster.query(query)
        health = cluster.health()
        assert len(health["shards"]) == 3
        states = {entry["shard"]: entry["state"] for entry in health["shards"]}
        assert states[victim] == OPEN
        assert any(event["shard"] == victim for event in health["events"])
        assert health["degraded_answers"] + health["certified_exact"] >= 1

    def test_observers_receive_every_event(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=2,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        seen = []
        cluster.add_health_observer(seen.append)
        kill_shard(injector, 0)
        kill_shard(injector, 1)
        cluster.query(trailing_query(cluster, k=5))
        assert seen
        cluster.remove_health_observer(seen.append)
        count = len(seen)
        cluster.query(trailing_query(cluster, k=5))
        assert len(seen) == count

    def test_counters_surface_the_fault_domain(self, small_dataset):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=3,
            resilience=NO_SLEEP,
            injector=injector,
            allow_degraded=True,
        )
        kill_shard(injector, 0)
        cluster.query(trailing_query(cluster, k=5))
        counters = cluster.counters()
        for key in (
            "breaker_opens",
            "shards.down",
            "shards.retries",
            "shards.timeouts",
            "shards.failed",
            "certified_exact",
            "degraded_answers",
            "recoveries",
        ):
            assert key in counters
        assert counters["breaker_opens"] >= 0


class TestGuardOverheadSmoke:
    def test_guarded_inline_call_has_no_executor(self, small_dataset):
        # call_timeout=None runs thunks inline on the caller's thread:
        # the guard must not spin up executors on the happy path.
        cluster = ClusterTree.build(small_dataset, num_shards=2)
        cluster.query(trailing_query(cluster, k=5))
        assert all(guard._executor is None for guard in cluster._guards)

    def test_timeout_mode_bounds_a_stalled_shard(self, small_dataset):
        injector = FaultInjector(seed=0, sleep=time.sleep)
        # Keep the stall short: the abandoned executor thread sleeps it
        # out and the interpreter joins executor threads at exit.
        injector.configure(
            "shard.0.query", schedule=constant(1.0), kind="latency", delay=2.0
        )
        resilience = ResilienceConfig(call_timeout=0.1, sleep=lambda _: None)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=2,
            resilience=resilience,
            injector=injector,
            allow_degraded=True,
        )
        try:
            started = time.monotonic()
            answer = cluster.query(trailing_query(cluster, k=5))
            elapsed = time.monotonic() - started
            assert elapsed < 1.5  # never waits out the 2s stall
            if isinstance(answer, DegradedAnswer):
                assert 0 in answer.missed_shards
            assert cluster.counters()["shards.timeouts"] >= 1
        finally:
            cluster.close()
