"""Durable cluster state: save/open round trips and per-shard WAL replay.

The acceptance scenario lives in
``test_kill_during_routed_insert_recovers_consistently``: a routed
insert crashes after the owning shard's WAL append but mid-apply, the
process is abandoned, and recovery must replay the per-shard WALs back
to a cluster that is byte-identical with an uncrashed twin — with the
manifest's applied-LSN floor holding for every shard.
"""

import json
import os
import shutil

import pytest

from repro import (
    POI,
    ClusterStateError,
    ClusterTree,
    KNNTAQuery,
    TimeInterval,
    open_cluster,
    recover_cluster,
    save_cluster,
)
from repro.cluster.state import is_cluster_directory, read_manifest
from repro.reliability.faults import (
    FaultInjector,
    TransientIOError,
    constant,
    inject_tree_faults,
)
from repro.reliability.wal import RECORD_INSERT, read_wal
from repro.storage.serialize import save_tree


def trailing_query(tree, days=28.0, k=10, alpha0=0.3):
    end = tree.current_time
    return KNNTAQuery((0.4, 0.6), TimeInterval(end - days, end), k=k, alpha0=alpha0)


def assert_same_tree(expected, actual, tmp_path, tag=""):
    """Byte-compare the canonical checksummed serialisations."""
    path_a = str(tmp_path / ("expected%s.cmp.json" % tag))
    path_b = str(tmp_path / ("actual%s.cmp.json" % tag))
    save_tree(expected, path_a)
    save_tree(actual, path_b)
    with open(path_a, "rb") as a, open(path_b, "rb") as b:
        assert a.read() == b.read()


class TestSaveOpenRoundTrip:
    def test_save_then_open_preserves_answers(self, small_dataset, tmp_path):
        cluster = ClusterTree.build(small_dataset, num_shards=3, parallelism=2)
        query = trailing_query(cluster)
        expected = cluster.query(query)
        save_cluster(cluster, str(tmp_path / "c"))
        cluster.checkpoint()
        cluster.close()

        assert is_cluster_directory(str(tmp_path / "c"))
        reopened = open_cluster(str(tmp_path / "c"))
        try:
            assert reopened.parallelism == 2  # manifest default
            assert reopened.query(query) == expected
            assert sorted(map(str, reopened.poi_ids())) == sorted(
                map(str, cluster.poi_ids())
            )
        finally:
            reopened.close()

    def test_save_twice_rejected(self, small_dataset, tmp_path):
        cluster = ClusterTree.build(small_dataset, num_shards=2)
        save_cluster(cluster, str(tmp_path / "c"))
        with pytest.raises(ClusterStateError):
            save_cluster(cluster, str(tmp_path / "other"))
        cluster.close()

    def test_checkpoint_records_every_shard_lsn(self, small_dataset, tmp_path):
        cluster = ClusterTree.build(small_dataset, num_shards=2)
        save_cluster(cluster, str(tmp_path / "c"))
        cluster.insert_poi(POI("durable-1", 30.0, 25.0), {0: 2})
        cluster.checkpoint()
        manifest = read_manifest(str(tmp_path / "c"))
        recorded = {
            entry["dir"]: entry["applied_lsn"] for entry in manifest["shards"]
        }
        for shard in cluster.shards:
            assert recorded["shard-%d" % shard.index] == shard.tree.applied_lsn
        cluster.close()

    def test_uncheckpointed_mutations_replay_on_open(self, small_dataset, tmp_path):
        cluster = ClusterTree.build(small_dataset, num_shards=3)
        save_cluster(cluster, str(tmp_path / "c"))
        cluster.checkpoint()
        # Mutations after the checkpoint land only in the per-shard WALs.
        cluster.insert_poi(POI("wal-only", 31.0, 26.0), {0: 4})
        victim = sorted(map(str, cluster.poi_ids()))[0]
        victim = next(p for p in cluster.poi_ids() if str(p) == victim)
        cluster.delete_poi(victim)
        query = trailing_query(cluster, k=8)
        expected = cluster.query(query)
        cluster.close()  # no checkpoint: simulate an unclean-but-synced exit

        reopened = open_cluster(str(tmp_path / "c"))
        try:
            assert "wal-only" in reopened
            assert victim not in reopened
            assert reopened.query(query) == expected
        finally:
            reopened.close()


class TestKillDuringRoutedInsert:
    def test_kill_during_routed_insert_recovers_consistently(
        self, small_dataset, tmp_path
    ):
        # Two identical clusters; A applies the insert cleanly, B is
        # killed mid-apply (after the owning shard's WAL append) and
        # abandoned.  Per-shard replay must bring B's shards back
        # byte-identical with A's.
        cluster_a = ClusterTree.build(small_dataset, num_shards=3)
        cluster_b = ClusterTree.build(small_dataset, num_shards=3)
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")
        save_cluster(cluster_a, dir_a)
        save_cluster(cluster_b, dir_b)
        cluster_a.checkpoint()
        cluster_b.checkpoint()

        poi = POI("crash-insert", 30.0, 25.0)
        history = {0: 3, 1: 1}
        owner = cluster_b.plan.route(poi.point)
        assert owner is not None
        cluster_a.insert_poi(poi, dict(history))

        # Arm write faults on the owning shard only: the WAL record hits
        # disk, then the first TIA write of the apply step "crashes".
        injector = FaultInjector(seed=0)
        injector.configure("tia", schedule=constant(1.0))
        inject_tree_faults(
            cluster_b.shards[owner].tree, injector, fault_writes=True
        )
        with pytest.raises(TransientIOError):
            cluster_b.insert_poi(poi, dict(history))
        # Abandon B without close/checkpoint — the simulated kill.

        records, _ = read_wal(os.path.join(dir_b, "shard-%d" % owner, "tree.wal"))
        assert records[-1].type == RECORD_INSERT  # logged before the crash

        report = recover_cluster(dir_b)
        assert report.replayed >= 1
        assert "shard %d" % owner in report.summary()
        for index, shard_report in enumerate(report.shard_reports):
            manifest_lsn = report.manifest["shards"][index]["applied_lsn"]
            if manifest_lsn is not None:
                assert shard_report.tree.applied_lsn >= manifest_lsn
            assert_same_tree(
                cluster_a.shards[index].tree,
                shard_report.tree,
                tmp_path,
                tag="-%d" % index,
            )

        reopened = open_cluster(dir_b)
        try:
            assert "crash-insert" in reopened
            query = trailing_query(reopened, k=8, alpha0=0.5)
            assert reopened.query(query) == cluster_a.query(query)
        finally:
            reopened.close()
            cluster_a.close()


class TestManifestConsistency:
    def saved(self, small_dataset, tmp_path):
        cluster = ClusterTree.build(small_dataset, num_shards=2)
        directory = str(tmp_path / "c")
        save_cluster(cluster, directory)
        cluster.insert_poi(POI("durable-1", 30.0, 25.0))
        cluster.checkpoint()
        cluster.close()
        return directory

    def test_shard_behind_its_checkpoint_lsn_raises(
        self, small_dataset, tmp_path
    ):
        directory = self.saved(small_dataset, tmp_path)
        path = os.path.join(directory, "cluster.json")
        with open(path) as handle:
            manifest = json.load(handle)
        # Claim a shard checkpointed further than its durable state: the
        # recovered LSN now sits behind the manifest — lost writes.
        manifest["shards"][0]["applied_lsn"] = 999
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ClusterStateError, match="behind its checkpoint"):
            recover_cluster(directory)

    def test_missing_shard_directory_raises(self, small_dataset, tmp_path):
        directory = self.saved(small_dataset, tmp_path)
        shutil.rmtree(os.path.join(directory, "shard-1"))
        with pytest.raises(ClusterStateError, match="missing shard directory"):
            recover_cluster(directory)

    def test_unsupported_manifest_version_raises(self, small_dataset, tmp_path):
        directory = self.saved(small_dataset, tmp_path)
        path = os.path.join(directory, "cluster.json")
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ClusterStateError, match="version"):
            recover_cluster(directory)

    def test_non_cluster_directory_rejected(self, tmp_path):
        assert not is_cluster_directory(str(tmp_path))
        with pytest.raises(ClusterStateError, match="not a cluster directory"):
            recover_cluster(str(tmp_path))

    def test_corrupt_manifest_rejected(self, small_dataset, tmp_path):
        directory = self.saved(small_dataset, tmp_path)
        with open(os.path.join(directory, "cluster.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ClusterStateError, match="unreadable"):
            recover_cluster(directory)
