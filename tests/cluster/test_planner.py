"""Shard planning: balanced splits, deterministic routing, JSON round-trip."""

import random

import pytest

from repro.cluster import ShardPlan, plan_shards
from repro.spatial.geometry import Rect


def random_points(n, seed, lo=0.0, hi=100.0):
    rng = random.Random(seed)
    return [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]


class TestPlanShards:
    @pytest.mark.parametrize("method", ["kd", "grid"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7, 8])
    def test_every_point_routes_to_exactly_one_shard(self, method, num_shards):
        points = random_points(200, seed=num_shards)
        plan = plan_shards(points, num_shards, method=method)
        assert len(plan) == num_shards
        for point in points:
            owners = [
                index
                for index, region in enumerate(plan.regions)
                if region.contains_point(point)
            ]
            assert owners, "point %r owned by no region" % (point,)
            assert plan.route(point) == owners[0]

    def test_kd_split_balances_skewed_points(self):
        # Heavy skew: 90% of the points cluster in one corner.  A k-d
        # plan must still spread them; a grid plan will not.
        rng = random.Random(5)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(180)]
        points += [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(20)]
        plan = plan_shards(points, 4, method="kd")
        loads = [0] * 4
        for point in points:
            loads[plan.route(point)] += 1
        assert max(loads) <= 2 * min(loads)

    def test_grid_tiles_the_bounding_box_exactly(self):
        points = random_points(50, seed=1)
        plan = plan_shards(points, 6, method="grid")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        box = Rect((min(xs), min(ys)), (max(xs), max(ys)))
        union = Rect.union_all(plan.regions)
        assert union == box

    def test_single_shard_plan_covers_everything(self):
        points = random_points(30, seed=2)
        plan = plan_shards(points, 1)
        assert len(plan) == 1
        assert all(plan.route(point) == 0 for point in points)

    def test_empty_points_fall_back_to_the_world(self):
        world = Rect((0.0, 0.0), (10.0, 10.0))
        plan = plan_shards([], 4, world=world)
        assert len(plan) == 4
        assert Rect.union_all(plan.regions) == world

    def test_empty_points_without_world_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([], 2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([(0.0, 0.0)], 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([(0.0, 0.0)], 2, method="hash")

    def test_identical_coordinates_still_split(self):
        # A degenerate quantile (every x equal) must not produce an
        # empty-extent region.
        points = [(5.0, float(i)) for i in range(20)]
        plan = plan_shards(points, 4, method="kd")
        assert len(plan) == 4
        for point in points:
            assert plan.route(point) is not None


class TestShardPlanRouting:
    def test_boundary_points_route_deterministically(self):
        plan = ShardPlan(
            [Rect((0.0, 0.0), (5.0, 10.0)), Rect((5.0, 0.0), (10.0, 10.0))]
        )
        # x=5 sits on the shared edge: the first containing region wins.
        assert plan.route((5.0, 5.0)) == 0

    def test_out_of_bounds_routes_to_none(self):
        plan = ShardPlan([Rect((0.0, 0.0), (10.0, 10.0))])
        assert plan.route((20.0, 20.0)) is None

    def test_nearest_picks_the_closest_region(self):
        plan = ShardPlan(
            [Rect((0.0, 0.0), (5.0, 10.0)), Rect((5.0, 0.0), (10.0, 10.0))]
        )
        assert plan.nearest((12.0, 5.0)) == 1
        assert plan.nearest((-3.0, 5.0)) == 0

    def test_nearest_ties_break_to_the_lower_index(self):
        plan = ShardPlan(
            [Rect((0.0, 0.0), (4.0, 10.0)), Rect((6.0, 0.0), (10.0, 10.0))]
        )
        assert plan.nearest((5.0, 5.0)) == 0


class TestShardPlanSerialization:
    def test_json_round_trip(self):
        points = random_points(80, seed=9)
        for method in ("kd", "grid"):
            plan = plan_shards(points, 5, method=method)
            rebuilt = ShardPlan.from_json(plan.as_json())
            assert rebuilt == plan
            assert rebuilt.method == method
            for point in points:
                assert rebuilt.route(point) == plan.route(point)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ShardPlan([])
        with pytest.raises(ValueError):
            ShardPlan([Rect((0.0,), (1.0,))])
