"""Seeded chaos: shards die and stall mid-scatter-gather under load.

Every answer the cluster produces while shards are being killed,
stalled and recovered must satisfy the *trichotomy*:

1. a plain list answer claims exactness — it must be bit-identical to
   the single-tree oracle for the same query;
2. otherwise the degradation is explicit — a :class:`DegradedAnswer`
   carrying the missed shards, the coverage and the score bound, with
   every row scoring below the bound provably final;
3. and the query always completes — never a hang past the per-shard
   deadline, never a crash escaping the coordinator.

The fault schedule is seeded (``REPRO_CHAOS_SEED``, default 0) so a CI
failure replays locally with the same seed; the CI chaos leg runs a
small fixed seed matrix.
"""

import os
import random
import threading
import time

import pytest

from repro import (
    ClusterTree,
    DegradedAnswer,
    KNNTAQuery,
    ResilienceConfig,
    TARTree,
    TimeInterval,
)
from repro.cluster import open_cluster, save_cluster
from repro.cluster.resilience import CLOSED
from repro.reliability.faults import FaultInjector, TransientIOError, constant

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Rows scoring this far below the degradation bound are asserted final.
EPSILON = 1e-9


def make_workload(cluster, seed, count=12):
    rng = random.Random(seed)
    end = cluster.current_time
    queries = []
    for _ in range(count):
        days = rng.choice([14.0, 28.0, 90.0])
        queries.append(
            KNNTAQuery(
                (rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)),
                TimeInterval(end - days, end),
                k=rng.choice([3, 5, 10]),
                alpha0=rng.choice([0.2, 0.5, 0.8]),
            )
        )
    return queries


def check_answer(answer, oracle, failures, label):
    """One trichotomy check; appends a description on violation."""
    if getattr(answer, "degraded", False):
        if not answer.missed_shards:
            failures.append("%s: degraded answer without missed shards" % label)
            return
        if not 0.0 <= answer.coverage < 1.0:
            failures.append("%s: bad coverage %r" % (label, answer.coverage))
        bound = answer.score_bound
        if bound is None:
            return
        for position, row in enumerate(answer):
            if row.score < bound - EPSILON and row != oracle[position]:
                failures.append(
                    "%s: row %d scores below the bound (%.6f < %.6f) but "
                    "differs from the oracle" % (label, position, row.score, bound)
                )
                return
    elif list(answer) != oracle:
        failures.append("%s: exact-flagged answer differs from the oracle" % label)


@pytest.fixture
def chaos_cluster(small_dataset, tmp_path):
    built = ClusterTree.build(small_dataset, num_shards=4)
    save_cluster(built, str(tmp_path / "c"))
    built.close()
    injector = FaultInjector(seed=CHAOS_SEED)
    resilience = ResilienceConfig(
        call_timeout=0.25,
        sleep=lambda _: None,
        probe_after=2,
        probe_successes=1,
    )
    cluster = open_cluster(
        str(tmp_path / "c"),
        parallelism=2,
        resilience=resilience,
        injector=injector,
        allow_degraded=True,
    )
    yield cluster, injector
    cluster.close()


class TestChaosTrichotomy:
    def test_kills_and_stalls_under_concurrent_load(
        self, chaos_cluster, small_dataset
    ):
        cluster, injector = chaos_cluster
        single = TARTree.build(small_dataset)
        queries = make_workload(cluster, CHAOS_SEED)
        oracle = [single.query(query) for query in queries]
        failures = []
        stop = threading.Event()

        def worker(worker_id):
            rng = random.Random(CHAOS_SEED * 1000 + worker_id)
            while not stop.is_set():
                index = rng.randrange(len(queries))
                try:
                    answer = cluster.query(queries[index])
                except Exception as exc:
                    failures.append(
                        "worker %d query %d escaped: %s: %s"
                        % (worker_id, index, type(exc).__name__, exc)
                    )
                    return
                check_answer(
                    answer,
                    oracle[index],
                    failures,
                    "worker %d query %d" % (worker_id, index),
                )

        def chaos():
            rng = random.Random(CHAOS_SEED + 999)
            deadline = time.monotonic() + 1.5
            while time.monotonic() < deadline:
                victim = rng.randrange(len(cluster.shards))
                site = "shard.%d.query" % victim
                kind = rng.choice(["fatal", "transient", "latency"])
                if kind == "latency":
                    # Stalls past the 0.25s call deadline: surfaces as a
                    # timeout, not a hang.
                    injector.configure(
                        site, schedule=constant(1.0), kind="latency", delay=0.6
                    )
                else:
                    injector.configure(
                        site,
                        schedule=constant(rng.uniform(0.5, 1.0)),
                        kind=kind,
                    )
                time.sleep(0.05)
                injector.disarm(site)
                # Drive online recovery for fatally-killed shards so the
                # run exercises readmission, not just quarantine.
                for _ in range(len(cluster.shards)):
                    cluster.scrub_tick(budget=4)
            stop.set()

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(4)
        ]
        chaos_thread = threading.Thread(target=chaos, daemon=True)
        for thread in threads:
            thread.start()
        chaos_thread.start()
        chaos_thread.join(timeout=30.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        hung = [thread for thread in threads + [chaos_thread] if thread.is_alive()]
        assert not hung, "threads hung past the deadline: %r" % (hung,)
        assert not failures, "\n".join(failures[:10])

    def test_cluster_returns_to_exact_after_the_storm(
        self, chaos_cluster, small_dataset
    ):
        cluster, injector = chaos_cluster
        single = TARTree.build(small_dataset)
        queries = make_workload(cluster, CHAOS_SEED + 7, count=6)
        oracle = [single.query(query) for query in queries]
        # Kill every shard fatally, once.
        for shard in cluster.shards:
            injector.configure(
                "shard.%d.query" % shard.index, schedule=constant(1.0), kind="fatal"
            )
        for query in queries:
            answer = cluster.query(query)
            assert getattr(answer, "degraded", False)
        for shard in cluster.shards:
            injector.disarm("shard.%d.query" % shard.index)
        # The scrub loop recovers each quarantined shard online; probe
        # queries then close the breakers.
        for _ in range(4 * len(cluster.shards)):
            cluster.scrub_tick(budget=8)
            if cluster.counters()["recoveries"] >= len(cluster.shards):
                break
        assert cluster.counters()["recoveries"] >= len(cluster.shards)
        for _ in range(3):
            for query in queries:
                cluster.query(query)
        assert all(
            guard.breaker.state == CLOSED for guard in cluster._guards
        )
        failures = []
        for index, query in enumerate(queries):
            answer = cluster.query(query)
            assert not getattr(answer, "degraded", False)
            check_answer(answer, oracle[index], failures, "post-storm %d" % index)
        assert not failures, "\n".join(failures)

    def test_stalled_shard_never_hangs_the_query(self, chaos_cluster):
        cluster, injector = chaos_cluster
        injector.configure(
            "shard.0.query", schedule=constant(1.0), kind="latency", delay=1.0
        )
        query = make_workload(cluster, CHAOS_SEED)[0]
        started = time.monotonic()
        for _ in range(3):
            cluster.query(query)
        elapsed = time.monotonic() - started
        # Three queries against a 1s-stalled shard with a 0.25s deadline:
        # well under the 3s a hang-and-wait would cost.
        assert elapsed < 2.5
        assert cluster.counters()["shards.timeouts"] >= 1


# ----------------------------------------------------------------------
# Out-of-process worker chaos: SIGKILL is the fault injector
# ----------------------------------------------------------------------


@pytest.fixture
def worker_chaos_cluster(small_dataset, tmp_path):
    """A 4-worker remote cluster tuned for fast failure detection."""
    from repro.cluster import RemoteClusterTree

    built = ClusterTree.build(small_dataset, num_shards=4)
    save_cluster(built, str(tmp_path / "c"))
    built.close()
    resilience = ResilienceConfig(
        call_timeout=5.0,
        sleep=lambda _: None,
        probe_after=2,
        probe_successes=1,
    )
    remote = RemoteClusterTree.start(
        str(tmp_path / "c"),
        resilience=resilience,
        allow_degraded=True,
        request_timeout=5.0,
    )
    yield remote
    remote.close()


def recover_all_workers(remote):
    """Respawn every dead or quarantined worker; returns the count."""
    recovered = 0
    for shard in list(remote.shards):
        guard = remote._guards[shard.index]
        dead = shard.handle is not None and not shard.handle.alive
        if dead or guard.breaker.needs_recovery or guard.breaker.state != CLOSED:
            remote.recover_worker(shard.index)
            recovered += 1
    return recovered


@pytest.mark.timeout(300)
class TestWorkerSigkillChaos:
    """SIGKILL-ed worker processes obey the same trichotomy as
    in-process shard faults: every answer is exact or explicitly
    degraded, never silently wrong and never hung, and an online
    worker restart returns the cluster to bit-identical serving."""

    def test_sigkill_mid_query_exact_or_degraded_never_hung(
        self, worker_chaos_cluster, small_dataset
    ):
        remote = worker_chaos_cluster
        single = TARTree.build(small_dataset)
        queries = make_workload(remote, CHAOS_SEED, count=8)
        oracle = [single.query(query) for query in queries]
        failures = []
        stop = threading.Event()

        def prober(worker_id):
            rng = random.Random(CHAOS_SEED * 177 + worker_id)
            while not stop.is_set():
                index = rng.randrange(len(queries))
                try:
                    answer = remote.query(queries[index])
                except Exception as exc:
                    failures.append(
                        "prober %d query %d escaped: %s: %s"
                        % (worker_id, index, type(exc).__name__, exc)
                    )
                    return
                check_answer(
                    answer,
                    oracle[index],
                    failures,
                    "prober %d query %d" % (worker_id, index),
                )

        threads = [
            threading.Thread(target=prober, args=(worker_id,), daemon=True)
            for worker_id in range(3)
        ]
        for thread in threads:
            thread.start()
        rng = random.Random(CHAOS_SEED + 4242)
        try:
            for _ in range(3):
                victim = rng.randrange(len(remote.shards))
                remote.shards[victim].handle.kill()
                time.sleep(0.2)
                remote.recover_worker(victim)
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "probers hung"
        assert not failures, "\n".join(failures[:10])
        # Post-storm: every worker alive, answers exact again.
        recover_all_workers(remote)
        for _ in range(3):
            for query in queries:
                remote.query(query)
        for index, query in enumerate(queries):
            answer = remote.query(query)
            assert not getattr(answer, "degraded", False)
            assert list(answer) == list(oracle[index])
        assert remote.counters()["recoveries"] >= 3

    def test_sigkill_mid_insert_is_never_silent(
        self, worker_chaos_cluster
    ):
        from repro import POI
        from repro.cluster import ShardFaultError

        remote = worker_chaos_cluster
        rng = random.Random(CHAOS_SEED + 11)
        world = remote.world
        accepted = []
        refused = 0
        for step in range(24):
            if step == 8:
                victim = rng.randrange(len(remote.shards))
                remote.shards[victim].handle.kill()
            poi = POI(
                "chaos-%d" % step,
                rng.uniform(world.lows[0], world.highs[0]),
                rng.uniform(world.lows[1], world.highs[1]),
            )
            try:
                lsn = remote.insert_poi(poi, {0: rng.randint(1, 4)})
            except (ShardFaultError, TransientIOError) as exc:
                # The loss is explicit, typed and names its fault; the
                # mutation may or may not be WAL-durable (the worker
                # died around the append) — what it can never be is
                # silently dropped after a success reply.
                refused += 1
                assert str(exc)
                continue
            assert lsn is not None
            accepted.append(poi.poi_id)
        assert refused > 0, "the kill never hit an insert"
        recover_all_workers(remote)
        # Every acknowledged insert survived the crash + WAL recovery.
        for poi_id in accepted:
            assert poi_id in remote, poi_id
        assert remote.counters()["recoveries"] >= 1

    def test_sigkill_mid_split_aborts_cleanly_then_recovers(
        self, worker_chaos_cluster, small_dataset, tmp_path
    ):
        import os

        from repro.cluster import split_shard

        remote = worker_chaos_cluster
        single = TARTree.build(small_dataset)
        queries = make_workload(remote, CHAOS_SEED + 3, count=5)
        oracle = [single.query(query) for query in queries]
        shards_before = len(remote.shards)
        epoch_before = remote.plan_epoch
        dirs_before = sorted(os.listdir(str(tmp_path / "c")))

        # Kill the split's source worker: Phase A's drain checkpoint
        # hits a dead socket and the split must abort without touching
        # the routing table or leaking successor directories.
        remote.shards[0].handle.kill()
        with pytest.raises(Exception) as excinfo:
            split_shard(remote, 0)
        assert not isinstance(excinfo.value, AssertionError)
        assert len(remote.shards) == shards_before
        assert remote.plan_epoch == epoch_before
        assert sorted(os.listdir(str(tmp_path / "c"))) == dirs_before
        assert remote.counters()["reshards"] == 0

        # Online recovery brings the source back; answers are exact.
        recover_all_workers(remote)
        for _ in range(2):
            for query in queries:
                remote.query(query)
        for index, query in enumerate(queries):
            answer = remote.query(query)
            assert not getattr(answer, "degraded", False)
            assert list(answer) == list(oracle[index])

        # The aborted split released its claim: a retry now succeeds
        # and stays bit-identical.
        low, high = split_shard(remote, 0)
        assert (low, high) == (0, shards_before)
        for index, query in enumerate(queries):
            assert list(remote.query(query)) == list(oracle[index])

    def test_killed_worker_surfaces_in_health(self, worker_chaos_cluster):
        remote = worker_chaos_cluster
        remote.shards[2].handle.kill()
        remote.shards[2].handle.join(timeout=10)
        health = remote.health()
        entry = health["shards"][2]
        assert entry["alive"] is False
        remote.recover_worker(2)
        health = remote.health()
        assert health["shards"][2]["alive"] is True
        assert health["recoveries"] == 1

    def test_unreachable_owner_refuses_instead_of_diverging(
        self, worker_chaos_cluster
    ):
        from repro import POI
        from repro.cluster import ShardFaultError

        remote = worker_chaos_cluster
        victim = remote.shards[1]
        with remote._routing.read_locked():
            hello = victim.client.request({"op": "hello"})
        assert hello["pois"] > 0, "victim shard must own something"
        victim.handle.kill()
        victim.handle.join(timeout=10)
        refusals = (ShardFaultError, TransientIOError)
        # The dead worker might own any POI, so an ownership-dependent
        # operation must refuse loudly — treating the worker as "absent"
        # would let a duplicate insert through or turn a delete of an
        # indexed POI into a silent False.
        world = remote.world
        poi = POI("owner-probe-poi", world.lows[0], world.lows[1])
        with pytest.raises(refusals):
            remote.insert_poi(poi, {0: 1})
        with pytest.raises(refusals):
            remote.delete_poi("no-such-poi-anywhere")
        with pytest.raises(refusals):
            remote.__contains__("no-such-poi-anywhere")
        recover_all_workers(remote)
        # Healthy again: the same probes conclude normally.
        assert remote.delete_poi("no-such-poi-anywhere") is False
        assert remote.insert_poi(poi, {0: 1}) is not None
        assert poi.poi_id in remote
