"""QueryService over a ClusterTree: same surface, scatter-gather inside."""

import threading

import pytest

from repro import (
    POI,
    ClusterTree,
    KNNTAQuery,
    QueryService,
    TARTree,
    TimeInterval,
    open_cluster,
    save_cluster,
)
from repro.cluster.state import read_manifest
from repro.service import ServiceConfig


def make_query(tree, x=0.4, y=0.6, days=28.0, k=5, alpha0=0.3):
    end = tree.current_time
    return KNNTAQuery((x, y), TimeInterval(end - days, end), k=k, alpha0=alpha0)


@pytest.fixture()
def cluster(small_dataset):
    built = ClusterTree.build(small_dataset, num_shards=3)
    yield built
    built.close()


@pytest.mark.timeout(120)
class TestClusterQueryPath:
    def test_single_query_matches_direct_answer(self, cluster, small_dataset):
        single = TARTree.build(small_dataset)
        with QueryService(cluster) as service:
            query = make_query(cluster)
            assert service.query(query) == single.query(query)

    def test_batched_queries_all_match(self, cluster):
        queries = [
            make_query(cluster, x=0.1 * (i % 7), y=0.1 * (i % 5))
            for i in range(16)
        ]
        expected = [cluster.query(q) for q in queries]
        config = ServiceConfig(workers=1, batch_size=16, linger=0.05)
        service = QueryService(cluster, config=config, autostart=False)
        pending = [service.submit(q) for q in queries]
        service.start()
        results = [p.result(timeout=30) for p in pending]
        assert results == expected
        assert pending[0].batch_size > 1  # the backlog really coalesced
        service.close()

    def test_concurrent_queries_and_mutations_stay_exact(self, cluster):
        # Readers race a writer; every answer must match a direct query
        # against the cluster at *some* consistent point, checked by the
        # cluster's own locking (no torn reads -> no exceptions, exact
        # result tuples).
        config = ServiceConfig(workers=2, batch_size=4, linger=0.005)
        errors = []
        with QueryService(cluster, config=config) as service:
            def read(index):
                try:
                    query = make_query(cluster, x=0.1 * (index % 9))
                    assert len(service.query(query)) <= query.k
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def write(index):
                try:
                    service.insert(POI("svc-%d" % index, 30.0 + index, 25.0))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=read, args=(i,)) for i in range(12)
            ] + [threading.Thread(target=write, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert errors == []
        assert all("svc-%d" % i in cluster for i in range(4))


@pytest.mark.timeout(120)
class TestClusterMutationsAndLifecycle:
    def test_cluster_plus_ingest_rejected(self, cluster):
        class FakeIngest:
            tree = cluster

        with pytest.raises(ValueError):
            QueryService(cluster, ingest=FakeIngest())

    def test_mutations_route_through_the_cluster(self, cluster):
        with QueryService(cluster) as service:
            assert service.insert(POI("svc-new", 30.0, 25.0), {0: 2}) is None
            assert "svc-new" in cluster
            service.digest(0, {"svc-new": 3})
            assert cluster.poi_tia("svc-new").get(0) == 5
            assert service.delete("svc-new") is True
            assert "svc-new" not in cluster

    def test_durable_cluster_mutations_return_lsns(self, small_dataset, tmp_path):
        built = ClusterTree.build(small_dataset, num_shards=2)
        save_cluster(built, str(tmp_path / "c"))
        with QueryService(built) as service:
            lsn = service.insert(POI("svc-durable", 30.0, 25.0), {0: 2})
            assert isinstance(lsn, int)
            manifest_path = service.checkpoint()
            assert manifest_path.endswith("cluster.json")
        manifest = read_manifest(str(tmp_path / "c"))
        owner = built.plan.route((30.0, 25.0))
        assert manifest["shards"][owner]["applied_lsn"] >= lsn
        built.close()

        reopened = open_cluster(str(tmp_path / "c"))
        try:
            assert "svc-durable" in reopened
        finally:
            reopened.close()

    def test_scrub_tick_round_robins_cluster_shards(self, cluster):
        with QueryService(cluster) as service:
            assert service.scrubber is None  # shards own their scrubbers
            for _ in range(len(cluster.shards)):
                assert service.scrub_tick(budget=64) >= 0
        assert all(shard.scrubber is not None for shard in cluster.shards)

    def test_stats_report_cluster_counters(self, cluster):
        with QueryService(cluster) as service:
            service.query(make_query(cluster))
            snapshot = service.stats()
        assert snapshot["pois"] == len(cluster)
        assert snapshot["cluster"]["queries"] >= 1
        assert snapshot["cluster"]["shards"] == 3
        assert "shards.pruned" in snapshot["cluster"]
