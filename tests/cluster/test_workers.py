"""Out-of-process shard workers: protocol, equivalence, live resharding.

Three layers under test (docs/CLUSTER.md "Process model"):

1. the worker wire protocol — ``hello`` handshake with ``proto``
   version negotiation, shard ops (query/batch/insert/delete/digest),
   and the reshard-facing ops (``wal_tail``, ``checkpoint``);
2. the :class:`RemoteClusterTree` coordinator — every answer
   bit-identical (ids, scores, tie order) to the single-tree oracle,
   across alphas, intervals, semantics and a routed mutation stream;
3. live resharding — a shard split under load keeps answers
   bit-identical before, during and after the cutover, survives a
   coordinator restart through the versioned manifest, and a manifest
   rolled back across a committed split is refused.
"""

import json
import os
import random
import socketserver
import threading

import pytest

from repro import (
    ClusterTree,
    IntervalSemantics,
    KNNTAQuery,
    TARTree,
    TimeInterval,
)
from repro.cluster import (
    ClusterStateError,
    RemoteClusterTree,
    ReshardPolicy,
    ShardWorkerServer,
    WireProtocolError,
    WorkerClient,
    maybe_split,
    save_cluster,
    split_shard,
)
from repro.cluster.state import read_manifest, write_manifest_payload
from repro.core.tar_tree import POI
from repro.service.server import PROTO_VERSION


def make_cluster_dir(dataset, path, num_shards=4):
    """Build, persist and close an in-process cluster; return its dir."""
    built = ClusterTree.build(dataset, num_shards=num_shards)
    save_cluster(built, str(path))
    built.close()
    return str(path)


def rows_of(answer):
    return [tuple(row) for row in answer]


def random_queries(tree, rng, count=12):
    """A seeded spread over point, k, alpha0, interval and semantics."""
    end = tree.current_time
    world = tree.world
    queries = []
    for _ in range(count):
        point = (
            rng.uniform(world.lows[0], world.highs[0]),
            rng.uniform(world.lows[1], world.highs[1]),
        )
        span = rng.uniform(7.0, 120.0)
        offset = rng.uniform(0.0, 200.0)
        interval = TimeInterval(max(0.0, end - offset - span), end - offset)
        queries.append(
            KNNTAQuery(
                point,
                interval,
                k=rng.choice([1, 3, 5, 10]),
                alpha0=rng.choice([0.05, 0.3, 0.7, 0.95]),
                semantics=rng.choice(
                    [IntervalSemantics.INTERSECTS, IntervalSemantics.CONTAINED]
                ),
            )
        )
    return queries


# ----------------------------------------------------------------------
# Wire protocol (in-thread server — no process spawn)
# ----------------------------------------------------------------------


@pytest.fixture
def worker_server(small_dataset, tmp_path):
    directory = make_cluster_dir(small_dataset, tmp_path / "c", num_shards=2)
    server = ShardWorkerServer(os.path.join(directory, "shard-0")).start()
    yield server
    server.shutdown()


@pytest.mark.timeout(120)
class TestWorkerProtocol:
    def test_hello_announces_identity_and_proto(self, worker_server):
        host, port = worker_server.address
        client = WorkerClient(host, port, index=0)
        try:
            hello = client.connect()
            assert hello["proto"] == PROTO_VERSION
            assert hello["name"] == "tree"
            assert hello["pois"] == len(worker_server.tree)
            assert len(hello["world"]) == 2
            assert len(hello["clock"]) == 2
            assert hello["descriptor"]["pois"] == len(worker_server.tree)
            assert hello["aggregate_kind"] == worker_server.tree.aggregate_kind.value
        finally:
            client.close()

    def test_mismatched_request_refused_with_stable_code(self, worker_server):
        response = worker_server.handle_request(
            json.dumps({"op": "hello", "proto": PROTO_VERSION + 1})
        )
        assert response["ok"] is False
        assert response["code"] == "proto-mismatch"
        assert response["proto"] == PROTO_VERSION
        # The refusal names both versions so the operator can tell
        # which side is stale.
        assert str(PROTO_VERSION + 1) in response["error"]

    def test_client_refuses_a_server_speaking_another_proto(self):
        class FutureHandler(socketserver.StreamRequestHandler):
            def handle(self):
                for _ in self.rfile:
                    frame = {"ok": True, "proto": PROTO_VERSION + 1}
                    self.wfile.write(
                        (json.dumps(frame) + "\n").encode("utf-8")
                    )
                    self.wfile.flush()

        server = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), FutureHandler
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = WorkerClient(*server.server_address, index=0)
        try:
            with pytest.raises(WireProtocolError):
                client.connect()
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_mutations_carry_descriptor_footer_and_lsn(self, worker_server):
        host, port = worker_server.address
        client = WorkerClient(host, port, index=0)
        try:
            client.connect()
            response = client.request(
                {
                    "op": "insert",
                    "poi_id": "wire-poi",
                    "point": [0.5, 0.5],
                    "aggregates": [[0, 3]],
                }
            )
            assert response["lsn"] is not None
            assert response["applied_lsn"] == response["lsn"]
            assert response["pois"] == len(worker_server.tree)
            assert response["descriptor"]["pois"] == len(worker_server.tree)
            assert client.request({"op": "delete", "poi_id": "wire-poi"})[
                "deleted"
            ]
        finally:
            client.close()

    def test_wal_tail_after_checkpoint_is_empty(self, worker_server):
        host, port = worker_server.address
        client = WorkerClient(host, port, index=0)
        try:
            lsn = client.request(
                {
                    "op": "insert",
                    "poi_id": "tail-poi",
                    "point": [0.25, 0.25],
                    "aggregates": [[0, 1]],
                }
            )["lsn"]
            tail = client.request({"op": "wal_tail", "after": lsn - 1})
            assert [record[0] for record in tail["records"]] == [lsn]
            assert tail["records"][0][1] == "insert"
            checkpointed = client.request({"op": "checkpoint"})
            ckpt_lsn = checkpointed["applied_lsn"]
            assert ckpt_lsn >= lsn
            # A tail from the checkpoint LSN onward is contiguous (and
            # empty: the checkpoint compacted everything before it).
            tail = client.request({"op": "wal_tail", "after": ckpt_lsn})
            assert tail["records"] == []
            # The drain that worked before the checkpoint now spans a
            # compacted record — pretending "empty" there would silently
            # lose mutations in a reshard drain, so the worker refuses
            # with a stable code instead.
            with pytest.raises(RuntimeError, match="wal-tail-gap"):
                client.request({"op": "wal_tail", "after": lsn - 1})
        finally:
            client.close()

    def test_bad_requests_keep_the_worker_serving(self, worker_server):
        response = worker_server.handle_request(json.dumps({"op": "nope"}))
        assert response["code"] == "bad-request"
        response = worker_server.handle_request(json.dumps({"op": "query"}))
        assert response["code"] == "bad-request"
        assert worker_server.handle_request(json.dumps({"op": "health"}))["ok"]


# ----------------------------------------------------------------------
# Coordinator equivalence (spawned worker processes)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def remote_cluster(small_dataset, tmp_path_factory):
    directory = make_cluster_dir(
        small_dataset, tmp_path_factory.mktemp("workers") / "c", num_shards=4
    )
    remote = RemoteClusterTree.start(directory)
    single = TARTree.build(small_dataset)
    yield remote, single
    remote.close()


@pytest.mark.timeout(300)
class TestRemoteEquivalence:
    def test_workers_are_separate_processes(self, remote_cluster):
        remote, _ = remote_cluster
        pids = {shard.handle.pid for shard in remote.shards}
        assert len(pids) == len(remote.shards)
        assert os.getpid() not in pids

    def test_answers_bit_identical_to_single_tree(self, remote_cluster):
        remote, single = remote_cluster
        before = remote.counters()
        rng = random.Random(31)
        for query in random_queries(single, rng, count=15):
            assert rows_of(remote.query(query)) == rows_of(
                single.query(query)
            ), query
        counters = remote.counters()
        assert counters["queries"] - before["queries"] == 15
        assert counters["shards.failed"] == before["shards.failed"]
        assert counters["degraded_answers"] == before["degraded_answers"]

    def test_batches_bit_identical_to_single_tree(self, remote_cluster):
        remote, single = remote_cluster
        rng = random.Random(77)
        queries = random_queries(single, rng, count=8)
        got = remote.query_batch(queries)
        expected = [single.query(query) for query in queries]
        assert [rows_of(answer) for answer in got] == [
            rows_of(answer) for answer in expected
        ]

    def test_bound_pruning_skips_unreachable_workers(
        self, small_dataset, tmp_path
    ):
        # Sequential dispatch makes the pruning observable: the
        # coordinator stops contacting workers once the next-best bound
        # cannot beat the running k-th score.
        directory = make_cluster_dir(
            small_dataset, tmp_path / "seq", num_shards=4
        )
        remote = RemoteClusterTree.start(directory, parallelism=1)
        try:
            single = TARTree.build(small_dataset)
            rng = random.Random(13)
            for query in random_queries(single, rng, count=10):
                assert rows_of(remote.query(query)) == rows_of(
                    single.query(query)
                )
            counters = remote.counters()
            assert counters["shards.pruned"] > 0
            assert (
                counters["shards.visited"] + counters["shards.pruned"]
                == counters["queries"] * 4
            )
        finally:
            remote.close()

    def test_health_reports_live_workers(self, remote_cluster):
        remote, _ = remote_cluster
        health = remote.health()
        assert len(health["shards"]) == len(remote.shards)
        for entry in health["shards"]:
            assert entry["alive"] is True
            assert entry["pid"] is not None
            assert entry["state"] == "closed"
        assert health["plan_epoch"] == 0
        assert health["reshards"] == 0

    def test_len_and_contains_parity(self, remote_cluster):
        remote, single = remote_cluster
        assert len(remote) == len(single)
        poi_id = next(iter(single.poi_ids()))
        assert poi_id in remote
        assert "definitely-not-a-poi" not in remote

    def test_exact_normalizer_refused(self, remote_cluster):
        remote, single = remote_cluster
        end = remote.current_time
        interval = TimeInterval(end - 28.0, end)
        with pytest.raises(ValueError, match="exact"):
            remote.normalizer(interval, exact=True)
        # The bound normaliser matches the single tree's: same diagonal,
        # same global per-epoch maxima.
        assert remote.normalizer(interval) == single.normalizer(interval)


@pytest.mark.timeout(300)
class TestRemoteMutations:
    def test_mutation_stream_keeps_answers_identical(
        self, small_dataset, tmp_path
    ):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        single = TARTree.build(small_dataset)
        remote = RemoteClusterTree.start(directory)
        rng = random.Random(42)
        try:
            next_id = 0
            for step in range(18):
                action = rng.random()
                if action < 0.4:
                    x = rng.uniform(
                        remote.world.lows[0], remote.world.highs[0]
                    )
                    y = rng.uniform(
                        remote.world.lows[1], remote.world.highs[1]
                    )
                    poi = POI("mut-%d" % next_id, x, y)
                    next_id += 1
                    history = {
                        e: rng.randint(1, 5) for e in range(rng.randint(0, 3))
                    }
                    remote.insert_poi(poi, dict(history))
                    single.insert_poi(poi, dict(history))
                elif action < 0.6:
                    ids = sorted(map(str, single.poi_ids()))
                    victim_key = rng.choice(ids)
                    victim = next(
                        poi_id
                        for poi_id in single.poi_ids()
                        if str(poi_id) == victim_key
                    )
                    assert remote.delete_poi(victim) == single.delete_poi(
                        victim
                    )
                else:
                    ids = list(single.poi_ids())
                    epoch = remote.clock.epoch_of(remote.current_time) + (
                        step % 2
                    )
                    batch = {
                        poi_id: rng.randint(1, 4)
                        for poi_id in rng.sample(ids, min(5, len(ids)))
                    }
                    remote.digest_epoch(epoch, dict(batch))
                    single.digest_epoch(epoch, dict(batch))
                if step % 6 == 5:
                    for query in random_queries(single, rng, count=3):
                        assert rows_of(remote.query(query)) == rows_of(
                            single.query(query)
                        )
            assert len(remote) == len(single)
            # The mutations are WAL-durable: a fresh set of workers over
            # the same directories recovers to the same answers.
            remote.checkpoint()
        finally:
            remote.close()
        reopened = RemoteClusterTree.start(directory)
        try:
            for query in random_queries(single, rng, count=5):
                assert rows_of(reopened.query(query)) == rows_of(
                    single.query(query)
                )
            assert len(reopened) == len(single)
        finally:
            reopened.close()

    def test_duplicate_insert_and_unknown_digest_refused(
        self, small_dataset, tmp_path
    ):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        remote = RemoteClusterTree.start(directory)
        try:
            poi_id = next(iter(TARTree.build(small_dataset).poi_ids()))
            with pytest.raises(ValueError):
                remote.insert_poi(POI(poi_id, 0.5, 0.5), {0: 1})
            with pytest.raises(KeyError):
                remote.digest_epoch(1, {"no-such-poi": 3})
        finally:
            remote.close()


# ----------------------------------------------------------------------
# Live resharding
# ----------------------------------------------------------------------


@pytest.mark.timeout(300)
class TestLiveReshard:
    def test_split_under_load_stays_bit_identical(
        self, small_dataset, tmp_path
    ):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        single = TARTree.build(small_dataset)
        remote = RemoteClusterTree.start(directory)
        rng = random.Random(8)
        queries = random_queries(single, rng, count=8)
        oracle = [rows_of(single.query(query)) for query in queries]
        failures = []
        stop = threading.Event()

        def prober():
            # Queries racing the split: every answer, including those
            # interleaved with the drain/cutover/replay, must equal the
            # oracle bit for bit.
            prng = random.Random(99)
            while not stop.is_set():
                index = prng.randrange(len(queries))
                try:
                    got = rows_of(remote.query(queries[index]))
                except Exception as exc:  # pragma: no cover - fail loud
                    failures.append("query %d escaped: %r" % (index, exc))
                    return
                if got != oracle[index]:
                    failures.append("query %d diverged during split" % index)
                    return

        thread = threading.Thread(target=prober, daemon=True)
        try:
            thread.start()
            loads = [
                (descriptor.pois, index)
                for index, descriptor in enumerate(remote._descriptors)
            ]
            source = max(loads)[1]
            low, high = split_shard(remote, source)
            stop.set()
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert not failures, failures[:5]
            assert low == source
            assert high == 2
            assert len(remote.shards) == 3
            assert remote.plan_epoch == 1
            assert remote.counters()["reshards"] == 1
            for index, query in enumerate(queries):
                assert rows_of(remote.query(query)) == oracle[index]
            # The manifest now names three shards at the new epoch.
            manifest = read_manifest(directory)
            assert manifest["plan_epoch"] == 1
            assert len(manifest["shards"]) == 3
        finally:
            stop.set()
            remote.close()
        # The versioned manifest makes the reshard crash-consistent: a
        # fresh coordinator over the same directory serves the split
        # plan with identical answers.
        reopened = RemoteClusterTree.start(directory)
        try:
            assert len(reopened.shards) == 3
            assert reopened.plan_epoch == 1
            for index, query in enumerate(queries):
                assert rows_of(reopened.query(query)) == oracle[index]
        finally:
            reopened.close()

    def test_manifest_rollback_across_a_split_is_refused(
        self, small_dataset, tmp_path
    ):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        stale_manifest = read_manifest(directory)
        remote = RemoteClusterTree.start(directory)
        try:
            split_shard(remote, 0)
        finally:
            remote.close()
        # Roll the manifest back to the pre-split epoch: the successor
        # directories hold committed reshard metadata that is newer, so
        # serving the stale plan would resurrect the retired source.
        write_manifest_payload(directory, stale_manifest)
        with pytest.raises(ClusterStateError, match="reshard"):
            RemoteClusterTree.start(directory)

    def test_policy_splits_on_the_maintenance_tick(
        self, small_dataset, tmp_path
    ):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        policy = ReshardPolicy(max_pois=4)
        remote = RemoteClusterTree.start(directory, reshard_policy=policy)
        try:
            assert remote.scrub_tick(budget=4) >= 0
            assert remote.counters()["reshards"] == 1
            assert len(remote.shards) == 3
            single = TARTree.build(small_dataset)
            rng = random.Random(4)
            for query in random_queries(single, rng, count=6):
                assert rows_of(remote.query(query)) == rows_of(
                    single.query(query)
                )
        finally:
            remote.close()

    def test_policy_leaves_small_shards_alone(self, small_dataset, tmp_path):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        remote = RemoteClusterTree.start(
            directory,
            reshard_policy=ReshardPolicy(max_pois=10 ** 6, min_pois=10 ** 6),
        )
        try:
            assert maybe_split(remote) is None
            assert remote.counters()["reshards"] == 0
            assert len(remote.shards) == 2
        finally:
            remote.close()

    def test_concurrent_splits_are_serialized(self, small_dataset, tmp_path):
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        remote = RemoteClusterTree.start(directory)
        try:
            remote._resharding = True
            with pytest.raises(ClusterStateError, match="in flight"):
                split_shard(remote, 0)
            remote._resharding = False
        finally:
            remote.close()

    def test_checkpoint_refuses_during_a_live_reshard(
        self, small_dataset, tmp_path
    ):
        # A cluster checkpoint interleaving with a split's lock-free
        # Phase A would compact the source WAL out from under the Phase
        # B drain, silently losing the tail — so checkpoint and split
        # claim the same exclusive-maintenance flag.
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        remote = RemoteClusterTree.start(directory)
        try:
            remote._resharding = True
            with pytest.raises(ClusterStateError, match="reshard"):
                remote.checkpoint()
            remote._resharding = False
            assert os.path.exists(remote.checkpoint())
            # And the flag excludes the other direction too: a split
            # cannot start while a checkpoint holds the claim.
            remote._resharding = True
            with pytest.raises(ClusterStateError, match="in flight"):
                split_shard(remote, 0)
            remote._resharding = False
        finally:
            remote.close()

    def test_post_commit_failure_keeps_committed_successors(
        self, small_dataset, tmp_path, monkeypatch
    ):
        # Once the manifest naming the successors is durable, a failure
        # in the remaining cutover steps must NOT tear the successors
        # down — deleting directories the committed manifest names
        # would leave a cluster that refuses to open.
        directory = make_cluster_dir(
            small_dataset, tmp_path / "c", num_shards=2
        )
        single = TARTree.build(small_dataset)
        rng = random.Random(21)
        queries = random_queries(single, rng, count=6)
        oracle = [rows_of(single.query(query)) for query in queries]
        remote = RemoteClusterTree.start(directory)
        try:
            original = RemoteClusterTree._absorb_state

            def boom(self, shard, payload):
                if remote._resharding:
                    raise RuntimeError("injected post-commit crash")
                return original(self, shard, payload)

            monkeypatch.setattr(RemoteClusterTree, "_absorb_state", boom)
            with pytest.raises(RuntimeError, match="post-commit crash"):
                split_shard(remote, 0)
            monkeypatch.setattr(RemoteClusterTree, "_absorb_state", original)
            # The committed state survived the failure.
            manifest = read_manifest(directory)
            assert manifest["plan_epoch"] == 1
            assert len(manifest["shards"]) == 3
            for entry in manifest["shards"]:
                assert os.path.isdir(os.path.join(directory, entry["dir"]))
        finally:
            remote.close()
        # The key regression: the directory still opens, and answers
        # over the committed successor plan match the oracle.
        reopened = RemoteClusterTree.start(directory)
        try:
            assert len(reopened.shards) == 3
            for index, query in enumerate(queries):
                assert rows_of(reopened.query(query)) == oracle[index]
        finally:
            reopened.close()
