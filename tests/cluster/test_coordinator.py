"""The cluster coordinator: scatter-gather queries and routed mutations."""

import pytest

from repro import (
    AccessStats,
    ClusterTree,
    KNNTAQuery,
    POI,
    TARTree,
    TimeInterval,
    sequential_scan,
)
from repro.cluster.coordinator import Shard
from repro.cluster.planner import plan_shards


@pytest.fixture(scope="module")
def cluster(small_dataset):
    built = ClusterTree.build(small_dataset, num_shards=4)
    yield built


@pytest.fixture(scope="module")
def single_tree(small_dataset):
    return TARTree.build(small_dataset)


def trailing_query(tree, days=28.0, k=10, alpha0=0.3):
    end = tree.current_time
    return KNNTAQuery((0.4, 0.6), TimeInterval(end - days, end), k=k, alpha0=alpha0)


class TestConstruction:
    def test_build_distributes_every_effective_poi(self, cluster, small_dataset):
        assert len(cluster) == len(small_dataset.effective_poi_ids())
        assert sorted(cluster.poi_ids()) == sorted(
            small_dataset.effective_poi_ids()
        )

    def test_shards_share_world_and_clock(self, cluster):
        for shard in cluster.shards:
            assert shard.tree.world == cluster.world
            assert shard.tree.clock is cluster.clock

    def test_plan_and_shard_count_must_agree(self, small_dataset):
        built = ClusterTree.build(small_dataset, num_shards=3)
        plan = plan_shards([(0.0, 0.0), (1.0, 1.0)], 2, world=small_dataset.world)
        with pytest.raises(ValueError):
            ClusterTree(plan, built.shards)

    def test_parallelism_validated(self, small_dataset):
        with pytest.raises(ValueError):
            ClusterTree.build(small_dataset, num_shards=2, parallelism=0)

    def test_bulk_build_matches_incremental(self, small_dataset):
        incremental = ClusterTree.build(small_dataset, num_shards=3)
        bulk = ClusterTree.build(small_dataset, num_shards=3, bulk=True)
        query = trailing_query(incremental)
        assert bulk.query(query) == incremental.query(query)


class TestNormalization:
    def test_global_epoch_max_matches_single_tree(self, cluster, single_tree):
        assert cluster.global_epoch_max() == single_tree.global_epoch_max()

    def test_normalizer_matches_single_tree(self, cluster, single_tree):
        query = trailing_query(cluster)
        assert cluster.normalizer(
            query.interval, query.semantics
        ) == single_tree.normalizer(query.interval, query.semantics)

    def test_exact_normalizer_matches_single_tree(self, cluster, single_tree):
        query = trailing_query(cluster)
        assert cluster.normalizer(
            query.interval, query.semantics, exact=True
        ) == single_tree.normalizer(query.interval, query.semantics, exact=True)


class TestQueries:
    def test_query_matches_single_tree(self, cluster, single_tree):
        query = trailing_query(cluster)
        assert cluster.query(query) == single_tree.query(query)

    def test_query_matches_sequential_scan_over_the_cluster(self, cluster):
        query = trailing_query(cluster, k=5, alpha0=0.7)
        results = cluster.query(query)
        expected = sequential_scan(cluster, query)
        assert [r.poi_id for r in results] == [r.poi_id for r in expected]

    def test_query_merges_stats_into_caller_stats(self, cluster):
        stats = AccessStats()
        cluster.query(trailing_query(cluster), stats=stats)
        assert stats.rtree_nodes > 0

    def test_explain_reports_flat_shard_labeled_costs(self, cluster):
        query = trailing_query(cluster)
        results, cost = cluster.explain(query)
        assert results == cluster.query(query)
        assert cost["shards"] == 4
        assert cost["shards.visited"] + cost["shards.pruned"] <= 4
        visited = [
            index
            for index in range(4)
            if ("shards.%d.total_io" % index) in cost
        ]
        assert len(visited) == cost["shards.visited"]
        total = sum(cost["shards.%d.rtree_nodes" % index] for index in visited)
        assert cost["rtree_nodes"] == total

    def test_selective_query_prunes_shards(self, cluster):
        # alpha0 ~ 1: distance dominates, so only the shards nearest the
        # query point can reach the top-k.
        query = trailing_query(cluster, k=2, alpha0=0.95)
        _, cost = cluster.explain(query)
        assert cost["shards.pruned"] >= 1

    def test_parallel_dispatch_matches_sequential(self, small_dataset):
        sequential = ClusterTree.build(small_dataset, num_shards=4)
        parallel = ClusterTree.build(small_dataset, num_shards=4, parallelism=4)
        for alpha0 in (0.1, 0.5, 0.9):
            query = trailing_query(sequential, k=7, alpha0=alpha0)
            assert parallel.query(query) == sequential.query(query)

    def test_counters_accumulate(self, small_dataset):
        built = ClusterTree.build(small_dataset, num_shards=2)
        built.query(trailing_query(built))
        built.query(trailing_query(built, alpha0=0.9))
        counters = built.counters()
        assert counters["queries"] == 2
        assert counters["shards"] == 2
        assert 1 <= counters["shards.visited"] <= 4

    def test_counters_emit_only_canonical_dotted_keys(self, small_dataset):
        # Dotted keys are canonical (one scheme with the shards.<i>.*
        # blocks of explain()); the snake-case aliases shimmed in for
        # one release are now gone.
        built = ClusterTree.build(small_dataset, num_shards=2)
        built.query(trailing_query(built))
        counters = built.counters()
        for dotted in (
            "shards.visited",
            "shards.pruned",
            "shards.failed",
            "shards.down",
            "shards.retries",
            "shards.timeouts",
        ):
            assert dotted in counters
        for legacy in (
            "shards_visited",
            "shards_pruned",
            "shards_failed",
            "shards_down",
            "shard_retries",
            "shard_timeouts",
        ):
            assert legacy not in counters

    def test_explain_emits_only_canonical_dotted_keys(self, cluster):
        _, cost = cluster.explain(trailing_query(cluster))
        for dotted in (
            "shards.visited",
            "shards.pruned",
            "shards.failed",
            "shards.certified",
            "shards.down",
        ):
            assert dotted in cost
        for legacy in (
            "shards_visited",
            "shards_pruned",
            "shards_failed",
            "shards_certified",
            "shards_down",
        ):
            assert legacy not in cost

    def test_query_batch_matches_single_tree(self, cluster, single_tree):
        end = cluster.current_time
        queries = [
            KNNTAQuery(
                (0.1 * i, 0.5), TimeInterval(end - 28, end), k=5, alpha0=0.3
            )
            for i in range(6)
        ]
        expected = [single_tree.query(query) for query in queries]
        assert cluster.query_batch(queries) == expected

    def test_query_batch_mixed_intervals(self, cluster, single_tree):
        end = cluster.current_time
        queries = [
            KNNTAQuery((0.4, 0.6), TimeInterval(end - 28, end), k=5),
            KNNTAQuery((0.2, 0.8), TimeInterval(end - 90, end - 30), k=3),
        ]
        expected = [single_tree.query(query) for query in queries]
        assert cluster.query_batch(queries) == expected

    def test_empty_shard_is_skipped_not_pruned(self, small_dataset):
        built = ClusterTree.build(small_dataset, num_shards=2)
        empty = TARTree(
            world=built.world,
            clock=built.clock,
            current_time=built.current_time,
        )
        shard = Shard(2, built.plan.regions[1], empty)
        plan = plan_shards(
            [(p.x, p.y) for p in map(built.poi, built.poi_ids())],
            3,
            world=built.world,
        )
        padded = ClusterTree(plan, list(built.shards) + [shard])
        _, cost = padded.explain(trailing_query(padded))
        assert cost["shards.visited"] + cost["shards.pruned"] <= 2


class TestRoutedMutations:
    def build(self, small_dataset, shards=3):
        return ClusterTree.build(small_dataset, num_shards=shards)

    def test_insert_routes_to_the_owning_shard(self, small_dataset):
        built = self.build(small_dataset)
        poi = POI("routed-1", 30.0, 25.0)
        built.insert_poi(poi, {0: 3})
        owner = built.plan.route(poi.point)
        assert "routed-1" in built.shards[owner].tree
        assert built.poi("routed-1").point == poi.point

    def test_duplicate_insert_rejected_cluster_wide(self, small_dataset):
        built = self.build(small_dataset)
        built.insert_poi(POI("dup", 30.0, 25.0))
        with pytest.raises(ValueError):
            built.insert_poi(POI("dup", 40.0, 30.0))

    def test_out_of_world_insert_rejected(self, small_dataset):
        built = self.build(small_dataset)
        outside = (built.world.highs[0] * 2 + 10, built.world.highs[1])
        with pytest.raises(ValueError):
            built.insert_poi(POI("far", outside[0], outside[1]))
        assert built.counters()["routing_overflows"] == 0

    def test_overflow_insert_falls_back_to_nearest_shard(self, small_dataset):
        built = self.build(small_dataset)
        # Inside the world but outside the planned (data bounding box)
        # regions: near-origin corners are typically unplanned.
        candidate = None
        for x, y in [(0.01, 0.01), (built.world.highs[0] - 0.01, 0.01)]:
            if built.plan.route((x, y)) is None and built.world.contains_point(
                (x, y)
            ):
                candidate = (x, y)
                break
        assert candidate is not None, "dataset box covers the whole world"
        built.insert_poi(POI("overflow", candidate[0], candidate[1]))
        assert built.counters()["routing_overflows"] == 1
        assert "overflow" in built
        nearest = built.plan.nearest(candidate)
        assert "overflow" in built.shards[nearest].tree

    def test_delete_routes_and_reports(self, small_dataset):
        built = self.build(small_dataset)
        victim = built.poi_ids()[0]
        assert built.delete_poi(victim) is True
        assert victim not in built
        assert built.delete_poi(victim) is False

    def test_digest_routes_per_shard(self, small_dataset):
        built = self.build(small_dataset)
        single = TARTree.build(small_dataset)
        epoch = built.clock.epoch_of(built.current_time)
        batch = {poi_id: 2 for poi_id in built.poi_ids()[:10]}
        built.digest_epoch(epoch, batch)
        single.digest_epoch(epoch, batch)
        query = trailing_query(single)
        assert built.query(query) == single.query(query)

    def test_digest_unknown_poi_rejected_before_any_apply(self, small_dataset):
        built = self.build(small_dataset)
        known = built.poi_ids()[0]
        before = built.poi_tia(known).get(0)
        with pytest.raises(KeyError):
            built.digest_epoch(0, {known: 5, "nope": 1})
        assert built.poi_tia(known).get(0) == before

    def test_digest_drops_non_positive_counts(self, small_dataset):
        built = self.build(small_dataset)
        known = built.poi_ids()[0]
        before = built.poi_tia(known).get(0)
        built.digest_epoch(0, {known: 0, "unknown-but-non-positive": -3})
        assert built.poi_tia(known).get(0) == before

    def test_mutations_preserve_single_tree_equivalence(self, small_dataset):
        built = self.build(small_dataset)
        single = TARTree.build(small_dataset)
        poi = POI("extra", 31.0, 26.0)
        built.insert_poi(poi, {1: 4})
        single.insert_poi(poi, {1: 4})
        victim = sorted(
            poi_id for poi_id in single.poi_ids() if poi_id != "extra"
        )[0]
        built.delete_poi(victim)
        single.delete_poi(victim)
        query = trailing_query(single, k=8, alpha0=0.5)
        assert built.query(query) == single.query(query)


class TestMaintenanceSurface:
    def test_scrub_tick_round_robins_the_shards(self, small_dataset):
        built = ClusterTree.build(small_dataset, num_shards=2)
        for _ in range(4):
            assert built.scrub_tick(budget=64) >= 0
        assert all(shard.scrubber is not None for shard in built.shards)

    def test_checkpoint_without_durable_state_raises(self, small_dataset):
        from repro import ClusterStateError

        built = ClusterTree.build(small_dataset, num_shards=2)
        with pytest.raises(ClusterStateError):
            built.checkpoint()

    def test_repr_and_iteration(self, cluster):
        assert "4 shards" in repr(cluster)
        assert [shard.index for shard in cluster] == [0, 1, 2, 3]
