"""The shared interprocedural call graph (repro.devtools.callgraph)."""

import ast
import textwrap

from repro.devtools.callgraph import build_program
from repro.devtools.lockmodel import classify_site


class FakeContext:
    """The duck the engine hands build_program: path, module, tree."""

    def __init__(self, module, source):
        self.module = module
        self.path = module.replace(".", "/") + ".py"
        self.tree = ast.parse(textwrap.dedent(source))


def program_of(**modules):
    return build_program(
        FakeContext(module, source) for module, source in modules.items()
    )


def calls_of(program, key, classify=None):
    summary = program.summaries(classify)[key]
    return [site.callee for site in summary.calls]


class TestCrossModuleResolution:
    def test_from_import_resolves_to_the_defining_module(self):
        program = program_of(**{
            "repro.a": """
                def helper():
                    return 1
                """,
            "repro.b": """
                from repro.a import helper

                def caller():
                    return helper()
                """,
        })
        assert calls_of(program, "repro.b.caller") == ["repro.a.helper"]

    def test_import_alias_resolves_module_attribute_calls(self):
        program = program_of(**{
            "repro.a": """
                def helper():
                    return 1
                """,
            "repro.b": """
                import repro.a as a

                def caller():
                    return a.helper()
                """,
        })
        assert calls_of(program, "repro.b.caller") == ["repro.a.helper"]

    def test_renamed_from_import_resolves(self):
        program = program_of(**{
            "repro.a": """
                def helper():
                    return 1
                """,
            "repro.b": """
                from repro.a import helper as h

                def caller():
                    return h()
                """,
        })
        assert calls_of(program, "repro.b.caller") == ["repro.a.helper"]

    def test_constructor_call_resolves_to_init(self):
        program = program_of(**{
            "repro.a": """
                class Widget:
                    def __init__(self):
                        pass
                """,
            "repro.b": """
                from repro.a import Widget

                def build():
                    return Widget()
                """,
        })
        assert calls_of(program, "repro.b.build") == ["repro.a.Widget.__init__"]


class TestMethodBinding:
    def test_self_call_binds_through_the_enclosing_class(self):
        program = program_of(**{
            "repro.a": """
                class Service:
                    def step(self):
                        return self.helper()

                    def helper(self):
                        return 1
                """,
        })
        assert calls_of(program, "repro.a.Service.step") == [
            "repro.a.Service.helper"
        ]

    def test_self_call_binds_through_a_resolvable_base(self):
        program = program_of(**{
            "repro.a": """
                class Base:
                    def helper(self):
                        return 1
                """,
            "repro.b": """
                from repro.a import Base

                class Child(Base):
                    def step(self):
                        return self.helper()
                """,
        })
        assert calls_of(program, "repro.b.Child.step") == [
            "repro.a.Base.helper"
        ]

    def test_constructed_attribute_types_bind_method_calls(self):
        # ``self._evaluator = Evaluator(...)`` in __init__ types the
        # attribute; ``self._evaluator.run()`` then binds to the class.
        program = program_of(**{
            "repro.a": """
                class Evaluator:
                    def run(self):
                        return 1
                """,
            "repro.b": """
                from repro.a import Evaluator

                class Registry:
                    def __init__(self):
                        self._evaluator = Evaluator()

                    def advance(self):
                        return self._evaluator.run()
                """,
        })
        assert "repro.a.Evaluator.run" in calls_of(
            program, "repro.b.Registry.advance"
        )

    def test_local_constructor_variable_binds_method_calls(self):
        program = program_of(**{
            "repro.a": """
                class Evaluator:
                    def run(self):
                        return 1

                def drive():
                    evaluator = Evaluator()
                    return evaluator.run()
                """,
        })
        assert "repro.a.Evaluator.run" in calls_of(program, "repro.a.drive")


class TestUnknownDegradation:
    def test_dynamic_receiver_resolves_to_none(self):
        program = program_of(**{
            "repro.a": """
                def caller(handler):
                    return handler.anything(1)
                """,
        })
        assert calls_of(program, "repro.a.caller") == [None]

    def test_unknown_callees_contribute_no_acquisitions(self):
        # The fixpoint never conjures a lock out of an unresolvable call.
        program = program_of(**{
            "repro.continuous.a": """
                def mystery(handler):
                    return handler.evaluate()
                """,
            "repro.continuous.b": """
                def locked():
                    with _mutex:
                        return 1
                """,
        })
        summaries = program.summaries(classify_site)
        may = program.transitive_acquisitions(summaries)
        assert may["repro.continuous.a.mystery"] == set()
        assert may["repro.continuous.b.locked"] == {"registry"}


class TestCycles:
    def test_recursive_call_graph_reaches_a_fixpoint(self):
        # a -> b -> a: the transitive-acquisition fixpoint terminates
        # and both ends see both locks.
        program = program_of(**{
            "repro.continuous.a": """
                from repro.continuous.b import pong

                def ping(depth):
                    with _mutex:
                        return pong(depth - 1)
                """,
            "repro.continuous.b": """
                from repro.continuous.a import ping

                def pong(depth):
                    with _dirty_lock:
                        return ping(depth - 1)
                """,
        })
        summaries = program.summaries(classify_site)
        may = program.transitive_acquisitions(summaries)
        assert may["repro.continuous.a.ping"] == {"registry", "dirty"}
        assert may["repro.continuous.b.pong"] == {"registry", "dirty"}

    def test_inheritance_cycle_does_not_recurse_forever(self):
        program = program_of(**{
            "repro.a": """
                class A(B):
                    def step(self):
                        return self.missing()

                class B(A):
                    pass
                """,
        })
        assert calls_of(program, "repro.a.A.step") == [None]


class TestGuardThunks:
    def test_named_thunk_passed_to_guard_call_gets_an_edge(self):
        program = program_of(**{
            "repro.cluster.a": """
                def dispatch(guard, shard, query):
                    def run():
                        return shard.tree.query(query)

                    return guard.call("query", run)
                """,
        })
        summary = program.summaries()["repro.cluster.a.dispatch"]
        thunks = [site.callee for site in summary.calls if site.via_thunk]
        assert thunks == ["repro.cluster.a.dispatch.run"]
