"""Per-rule fixtures: each rule fires, stays silent, and suppresses."""

from tests.devtools.conftest import rule_ids_of


class TestLockDiscipline:
    def test_unlocked_mutator_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def apply(tree, poi):
                tree.insert_poi(poi)
            """,
        )
        assert rule_ids_of(findings) == ["RT001", "RT002"]

    def test_mutator_under_write_lock_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def apply(self, poi):
                with self.lock.write_locked():
                    if self.ingest is None:
                        self.tree.insert_poi(poi)
            """,
        )
        assert findings == []

    def test_mutator_under_read_lock_still_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def repair(self, entry, expected):
                with self.lock.read_locked():
                    entry.tia.replace_all(expected)
            """,
        )
        assert rule_ids_of(findings) == ["RT001"]

    def test_unlocked_read_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            from repro.core.knnta import knnta_search

            def run(self, query):
                return knnta_search(self.tree, query)
            """,
        )
        assert rule_ids_of(findings) == ["RT001"]

    def test_read_under_read_lock_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            from repro.core.knnta import knnta_search

            def run(self, query):
                with self.lock.read_locked():
                    return knnta_search(self.tree, query)
            """,
        )
        assert findings == []

    def test_collective_run_requires_the_read_lock(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            from repro.core.collective import CollectiveProcessor

            def run(self, queries):
                return CollectiveProcessor(self.tree).run(queries)
            """,
        )
        assert rule_ids_of(findings) == ["RT001"]

    def test_helper_dominated_at_every_call_site_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            class Scrub:
                def _repair(self, entry, expected):
                    entry.tia.replace_all(expected)

                def tick(self, entry, expected):
                    with self.lock.write_locked():
                        self._repair(entry, expected)
            """,
        )
        assert findings == []

    def test_helper_with_an_unlocked_call_site_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            class Scrub:
                def _repair(self, entry, expected):
                    entry.tia.replace_all(expected)

                def tick(self, entry, expected):
                    with self.lock.write_locked():
                        self._repair(entry, expected)

                def emergency(self, entry, expected):
                    self._repair(entry, expected)
            """,
        )
        assert rule_ids_of(findings) == ["RT001"]

    def test_outside_the_service_package_is_out_of_scope(self, lint_source):
        findings = lint_source(
            "repro/reliability/mod.py",
            """
            def apply(tree, poi):
                tree.insert_poi(poi)
            """,
        )
        assert findings == []

    def test_cluster_package_is_in_scope(self, lint_source):
        # The coordinator holds one lock per shard; its mutators owe the
        # shard tree the same write-lock protocol the service owes its
        # tree.
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            def apply(shard, poi):
                shard.tree.insert_poi(poi)
            """,
        )
        assert rule_ids_of(findings) == ["RT001", "RT002", "RT007"]

    def test_cluster_locked_routed_mutation_is_clean(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            def route(self, shard, guard, poi):
                def apply(token):
                    with shard.lock.write_locked():
                        if shard.ingest is None:
                            shard.tree.insert_poi(poi)

                guard.call("mutate", apply)
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def repair(self, entry, expected):
                entry.tia.replace_all(expected)  # repro: allow[RT001]
            """,
        )
        assert findings == []


class TestWalBeforeApply:
    def test_unguarded_tree_mutation_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def digest(self, epoch, counts):
                with self.lock.write_locked():
                    self.tree.digest_epoch(epoch, counts)
            """,
        )
        assert "RT002" in rule_ids_of(findings)

    def test_standalone_guard_branch_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def digest(self, epoch, counts):
                with self.lock.write_locked():
                    if self.ingest is None:
                        self.tree.digest_epoch(epoch, counts)
                        return None
                    return self.ingest.digest(epoch, counts)
            """,
        )
        assert findings == []

    def test_the_else_branch_is_not_the_guard(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def digest(self, epoch, counts):
                with self.lock.write_locked():
                    if self.ingest is None:
                        return None
                    else:
                        self.tree.digest_epoch(epoch, counts)
            """,
        )
        assert "RT002" in rule_ids_of(findings)

    def test_cluster_unguarded_mutation_fires(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            def digest(self, shard, epoch, counts):
                with shard.lock.write_locked():
                    shard.tree.digest_epoch(epoch, counts)
            """,
        )
        assert rule_ids_of(findings) == ["RT002", "RT007"]

    def test_routing_through_the_ingest_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def digest(self, epoch, counts):
                with self.lock.write_locked():
                    return self.ingest.digest(epoch, counts)
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def rebuild(self, epoch, counts):
                with self.lock.write_locked():
                    self.tree.digest_epoch(epoch, counts)  # repro: allow[RT002]
            """,
        )
        assert findings == []


class TestNoBareAssert:
    def test_assert_fires_anywhere_in_src(self, lint_source):
        findings = lint_source(
            "repro/spatial/mod.py",
            """
            def check(count, size):
                assert count == size, "size mismatch"
            """,
        )
        assert rule_ids_of(findings) == ["RT003"]

    def test_explicit_raise_is_clean(self, lint_source):
        findings = lint_source(
            "repro/spatial/mod.py",
            """
            def check(count, size):
                if count != size:
                    raise AssertionError("size mismatch")
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/spatial/mod.py",
            """
            def check(count, size):
                assert count == size  # repro: allow[RT003]
            """,
        )
        assert findings == []


class TestFloatEquality:
    def test_float_literal_comparison_fires(self, lint_source):
        findings = lint_source(
            "repro/spatial/geometry.py",
            """
            def degenerate(extent):
                return extent == 0.0
            """,
        )
        assert rule_ids_of(findings) == ["RT004"]

    def test_division_comparison_fires_in_costmodel(self, lint_source):
        findings = lint_source(
            "repro/core/costmodel.py",
            """
            def ratio_is_half(a, b):
                return a / b != 0.5
            """,
        )
        assert rule_ids_of(findings) == ["RT004"]

    def test_isclose_is_clean(self, lint_source):
        findings = lint_source(
            "repro/spatial/geometry.py",
            """
            import math

            def degenerate(extent):
                return math.isclose(extent, 0.0, abs_tol=1e-12)
            """,
        )
        assert findings == []

    def test_integer_comparison_is_clean(self, lint_source):
        findings = lint_source(
            "repro/core/costmodel.py",
            """
            def last(end, total):
                return end == total - 1
            """,
        )
        assert findings == []

    def test_eq_dunder_is_exempt(self, lint_source):
        findings = lint_source(
            "repro/spatial/geometry.py",
            """
            class Rect:
                def __eq__(self, other):
                    return self.lows == other.lows and 0.0 == other.pad
            """,
        )
        assert findings == []

    def test_other_modules_are_out_of_scope(self, lint_source):
        findings = lint_source(
            "repro/core/mwa.py",
            """
            def boundary(gamma):
                return gamma == 0.0
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/spatial/geometry.py",
            """
            def degenerate(extent):
                return extent == 0.0  # repro: allow[RT004]
            """,
        )
        assert findings == []


class TestExceptionHygiene:
    def test_swallowing_broad_except_fires(self, lint_source):
        findings = lint_source(
            "repro/reliability/mod.py",
            """
            def load(path):
                try:
                    return open(path)
                except Exception:
                    return None
            """,
        )
        assert rule_ids_of(findings) == ["RT005"]

    def test_bare_except_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def tick(self):
                try:
                    self.step()
                except:
                    pass
            """,
        )
        assert rule_ids_of(findings) == ["RT005"]

    def test_reraise_is_clean(self, lint_source):
        findings = lint_source(
            "repro/reliability/mod.py",
            """
            def load(self, path):
                try:
                    return open(path)
                except Exception:
                    self.log.close()
                    raise
            """,
        )
        assert findings == []

    def test_using_the_exception_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def handle(self, batch):
                try:
                    self.run(batch)
                except Exception as exc:
                    for request in batch:
                        request.fail(exc)
            """,
        )
        assert findings == []

    def test_logging_is_clean(self, lint_source):
        findings = lint_source(
            "repro/reliability/mod.py",
            """
            import logging

            def tick(self):
                try:
                    self.step()
                except Exception:
                    logging.exception("tick failed")
            """,
        )
        assert findings == []

    def test_narrow_except_is_out_of_scope(self, lint_source):
        findings = lint_source(
            "repro/reliability/mod.py",
            """
            def load(path):
                try:
                    return open(path)
                except OSError:
                    return None
            """,
        )
        assert findings == []

    def test_other_packages_are_out_of_scope(self, lint_source):
        findings = lint_source(
            "repro/analysis/mod.py",
            """
            def fit(xs):
                try:
                    return sum(xs)
                except Exception:
                    return None
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def tick(self):
                try:
                    self.step()
                except Exception:  # repro: allow[RT005]
                    pass
            """,
        )
        assert findings == []


class TestGuardedShardDispatch:
    def test_naked_query_dispatch_fires(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.knnta import knnta_search

            def query_shard(self, shard, query):
                with shard.lock.read_locked():
                    return knnta_search(shard.tree, query)
            """,
        )
        assert rule_ids_of(findings) == ["RT007"]

    def test_dispatch_inside_a_guard_thunk_is_clean(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.knnta import knnta_search

            def query_shard(self, shard, guard, query):
                def dispatch(token):
                    with shard.lock.read_locked():
                        return knnta_search(shard.tree, query)

                return guard.call("query", dispatch)
            """,
        )
        assert findings == []

    def test_dispatch_inside_a_guard_lambda_is_clean(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            def refresh(self, shard, guard):
                return guard.call(
                    "query", lambda token: shard.tree.global_epoch_max()
                )
            """,
        )
        assert findings == []

    def test_collective_run_outside_a_guard_fires(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.collective import CollectiveProcessor

            def batch(self, shard, queries):
                with shard.lock.read_locked():
                    return CollectiveProcessor(shard.tree).run(queries)
            """,
        )
        assert rule_ids_of(findings) == ["RT007"]

    def test_helper_dominated_by_guard_thunks_is_clean(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.knnta import knnta_search

            class Coordinator:
                def _search(self, shard, query):
                    with shard.lock.read_locked():
                        return knnta_search(shard.tree, query)

                def query_shard(self, shard, guard, query):
                    def dispatch(token):
                        return self._search(shard, query)

                    return guard.call("query", dispatch)
            """,
        )
        assert findings == []

    def test_helper_with_an_unguarded_call_site_fires(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.knnta import knnta_search

            class Coordinator:
                def _search(self, shard, query):
                    with shard.lock.read_locked():
                        return knnta_search(shard.tree, query)

                def query_shard(self, shard, guard, query):
                    def dispatch(token):
                        return self._search(shard, query)

                    return guard.call("query", dispatch)

                def debug_query(self, shard, query):
                    return self._search(shard, query)
            """,
        )
        assert rule_ids_of(findings) == ["RT007"]

    def test_coordinator_own_wrappers_are_not_dispatch(self, lint_source):
        # ``self.global_epoch_max()`` is the coordinator's public API, not
        # a shard-tree call; only ``<obj>.tree.<m>(...)`` crosses the
        # fault-domain boundary.
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            def clock(self):
                return self.global_epoch_max()
            """,
        )
        assert findings == []

    def test_resilience_module_is_exempt(self, lint_source):
        findings = lint_source(
            "repro/cluster/resilience.py",
            """
            def bound_probe(self, shard, interval, semantics):
                with shard.lock.read_locked():
                    return shard.tree.max_aggregate_bound(interval, semantics)
            """,
        )
        assert findings == []

    def test_outside_the_cluster_package_is_out_of_scope(self, lint_source):
        findings = lint_source(
            "repro/analysis/mod.py",
            """
            from repro.core.knnta import knnta_search

            def probe(tree, query):
                return knnta_search(tree, query)
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/cluster/mod.py",
            """
            from repro.core.knnta import knnta_search

            def query_shard(self, shard, query):
                with shard.lock.read_locked():
                    return knnta_search(shard.tree, query)  # repro: allow[RT007]
            """,
        )
        assert findings == []


class TestWarnStacklevel:
    def test_warn_without_stacklevel_fires(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            import warnings

            def shim():
                warnings.warn("use the new API", DeprecationWarning)
            """,
        )
        assert rule_ids_of(findings) == ["RT006"]

    def test_warn_with_stacklevel_is_clean(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            import warnings

            def shim():
                warnings.warn("use the new API", DeprecationWarning, stacklevel=3)
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            import warnings

            def shim():
                warnings.warn("boo", DeprecationWarning)  # repro: allow[RT006]
            """,
        )
        assert findings == []


class TestLockOrder:
    def test_rank_ascent_fires(self, lint_source):
        # dirty (rank 75) held while taking the registry mutex (rank 50).
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._dirty_lock:
                        with self._mutex:
                            pass
            """,
        )
        assert rule_ids_of(findings) == ["RT008"]
        assert "lock-order violation" in findings[0].message

    def test_descending_ranks_are_clean(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def good(self):
                    with self._mutex:
                        with self._dirty_lock:
                            pass
            """,
        )
        assert findings == []

    def test_non_reentrant_self_nesting_fires(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._dirty_lock:
                        with self._dirty_lock:
                            pass
            """,
        )
        assert rule_ids_of(findings) == ["RT008"]
        assert "re-acquisition" in findings[0].message

    def test_reentrant_self_nesting_is_clean(self, lint_source):
        # The registry mutex is a declared-reentrant RLock.
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def reenter(self):
                    with self._mutex:
                        with self._mutex:
                            pass
            """,
        )
        assert findings == []

    def test_undeclared_lockish_site_fires(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._spare_lock:
                        pass
            """,
        )
        assert rule_ids_of(findings) == ["RT008"]
        assert "not declared in the lock model" in findings[0].message

    def test_cross_module_call_edge_fires(self, lint_tree):
        # The ascent only exists interprocedurally: b holds the dirty
        # lock and calls a.helper(), which takes the registry mutex.
        findings = lint_tree(
            {
                "repro/continuous/a.py": """
                    import threading

                    _mutex = threading.RLock()

                    def helper():
                        with _mutex:
                            return 1
                    """,
                "repro/continuous/b.py": """
                    import threading

                    from repro.continuous.a import helper

                    _dirty_lock = threading.Lock()

                    def outer():
                        with _dirty_lock:
                            return helper()
                    """,
            },
            select=["RT008"],
        )
        assert rule_ids_of(findings) == ["RT008"]
        assert "via helper()" in findings[0].message
        assert findings[0].path.endswith("b.py")

    def test_unresolvable_callee_contributes_no_edge(self, lint_tree):
        # Same shape, but the call goes through a dynamic attribute the
        # graph cannot resolve: coverage degrades, no false RT008.
        findings = lint_tree(
            {
                "repro/continuous/a.py": """
                    import threading

                    _mutex = threading.RLock()

                    def helper():
                        with _mutex:
                            return 1
                    """,
                "repro/continuous/b.py": """
                    import threading

                    _dirty_lock = threading.Lock()

                    def outer(handler):
                        with _dirty_lock:
                            return handler.helper()
                    """,
            },
            select=["RT008"],
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._dirty_lock:
                        with self._mutex:  # repro: allow[RT008]
                            pass
            """,
        )
        assert findings == []


class TestNoBlockingUnderLock:
    def test_sleep_under_write_lock_fires(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            import time

            class Service:
                def bad(self):
                    with self.lock.write_locked():
                        time.sleep(0.1)
            """,
        )
        assert rule_ids_of(findings) == ["RT009"]
        assert "blocking operation (sleep)" in findings[0].message

    def test_sleep_under_read_lock_is_clean(self, lint_source):
        # The shared side is exempt by design: queries block under it.
        findings = lint_source(
            "repro/service/mod.py",
            """
            import time

            class Service:
                def throttle(self):
                    with self.lock.read_locked():
                        time.sleep(0.1)
            """,
        )
        assert findings == []

    def test_transitive_blocking_fires_at_the_locked_call(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            import time

            class Service:
                def _pause(self):
                    time.sleep(0.1)

                def bad(self):
                    with self.lock.write_locked():
                        self._pause()
            """,
        )
        assert sorted(set(rule_ids_of(findings))) == ["RT009"]
        locked = [f for f in findings if "via" in f.message]
        assert locked and "via Service._pause()" in locked[0].message

    def test_thread_join_under_exclusive_lock_fires(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._mutex:
                        self._worker.join()
            """,
        )
        assert rule_ids_of(findings) == ["RT009"]
        assert "(join)" in findings[0].message

    def test_string_join_is_not_blocking(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def label(self):
                    with self._mutex:
                        return ", ".join(self._names)
            """,
        )
        assert findings == []

    def test_socket_write_under_push_lock_is_allowed(self, lint_source):
        # The push lock's licence: it exists to frame one message onto
        # the wire.
        findings = lint_source(
            "repro/service/server.py",
            """
            class Channel:
                def push(self, payload):
                    with self._lock:
                        self.wfile.write(payload)
            """,
        )
        assert findings == []

    def test_condition_wait_on_held_condition_is_clean(self, lint_source):
        findings = lint_source(
            "repro/service/locks.py",
            """
            class ReadWriteLock:
                def acquire(self):
                    with self._cond:
                        self._cond.wait_for(lambda: not self._writer)
            """,
        )
        assert findings == []

    def test_wal_module_callee_is_allowlisted(self, lint_tree):
        # The documented WAL-before-apply path: fsync under the
        # exclusive lock is the point, so repro.reliability is exempt.
        findings = lint_tree(
            {
                "repro/reliability/mywal.py": """
                    import os

                    def append(fd, record):
                        os.fsync(fd)
                    """,
                "repro/service/mod.py": """
                    from repro.reliability.mywal import append

                    class Service:
                        def digest(self, record):
                            with self.lock.write_locked():
                                append(self._fd, record)
                    """,
            },
            select=["RT009"],
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            import time

            class Service:
                def bad(self):
                    with self.lock.write_locked():
                        time.sleep(0.1)  # repro: allow[RT009]
            """,
        )
        assert findings == []


class TestNoForeignCallback:
    def test_sink_under_registry_mutex_fires(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def deliver(self, update):
                    with self._mutex:
                        for subscription in self._subscriptions:
                            subscription.sink(update)
            """,
        )
        assert rule_ids_of(findings) == ["RT010"]
        assert "foreign callback" in findings[0].message

    def test_snapshot_then_fire_is_clean(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def deliver(self, update):
                    with self._mutex:
                        sinks = [s.sink for s in self._subscriptions]
                    for sink in sinks:
                        sink(update)
            """,
        )
        assert findings == []

    def test_callbacks_under_the_advance_gate_are_licensed(self, lint_source):
        # The gate protects no engine state; it is the one lock with the
        # foreign-callbacks licence.
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def deliver(self, update):
                    with self._advance_gate:
                        for subscription in self._subscriptions:
                            subscription.sink(update)
            """,
        )
        assert findings == []

    def test_inherited_lock_context_fires(self, lint_source):
        # The callback site holds nothing lexically; the restriction
        # arrives through the caller's mutex (the call-graph context).
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def notify(self):
                    with self._mutex:
                        self._fire()

                def _fire(self):
                    self._on_event()
            """,
        )
        assert rule_ids_of(findings) == ["RT010"]
        assert "registry" in findings[0].message

    def test_out_of_scope_module_is_clean(self, lint_source):
        findings = lint_source(
            "repro/analysis/mod.py",
            """
            class Report:
                def render(self):
                    with self._plot_lock:  # repro: allow[RT008]
                        self.callback()
            """,
        )
        assert findings == []

    def test_suppression(self, lint_source):
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def deliver(self, update):
                    with self._mutex:
                        for subscription in self._subscriptions:
                            subscription.sink(update)  # repro: allow[RT010]
            """,
        )
        assert findings == []
