"""Shared helpers for the lint-engine tests.

Rule tests write fixture modules into a temporary tree shaped like the
real package (``<tmp>/repro/service/mod.py``), because module-scoped
rules key on the dotted module name the engine derives from the path.
"""

import textwrap

import pytest

from repro.devtools import lint_file, lint_paths


@pytest.fixture
def lint_source(tmp_path):
    """Write ``source`` at ``relpath`` under a fake package root and lint it.

    Returns the findings list.  ``relpath`` is relative to the fixture
    root, e.g. ``"repro/service/mod.py"``.
    """

    def _lint(relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_file(str(path))

    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write several fixture modules and lint them as one program.

    ``files`` maps relpaths to sources; extra keyword arguments go to
    :func:`lint_paths` (``select=...`` scopes the run to the rules under
    test).  Returns the findings list — what the cross-module rules see.
    """

    def _lint(files, **kwargs):
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        findings, _files_checked = lint_paths([str(tmp_path)], **kwargs)
        return findings

    return _lint


def rule_ids_of(findings):
    return [finding.rule_id for finding in findings]
