"""Engine mechanics: suppressions, meta findings, selection, reporters."""

import io
import json

import pytest

from repro.devtools import (
    META_PARSE_ERROR,
    META_UNUSED,
    lint_paths,
    registered_rules,
    render_json,
    render_text,
    rule_ids,
)
from repro.devtools.engine import module_name

from tests.devtools.conftest import rule_ids_of


class TestModuleNames:
    def test_anchored_at_the_last_repro_component(self, tmp_path):
        path = tmp_path / "repro" / "service" / "service.py"
        assert module_name(str(path)) == "repro.service.service"

    def test_init_maps_to_the_package(self, tmp_path):
        path = tmp_path / "repro" / "service" / "__init__.py"
        assert module_name(str(path)) == "repro.service"

    def test_unanchored_path_falls_back_to_the_stem(self, tmp_path):
        assert module_name(str(tmp_path / "scratch.py")) == "scratch"


class TestSuppressions:
    def test_same_line_allow_comment_silences_the_finding(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            def f(x):
                assert x  # repro: allow[RT003]
            """,
        )
        assert findings == []

    def test_allow_comment_on_another_line_does_not_apply(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            # repro: allow[RT003]
            def f(x):
                assert x
            """,
        )
        assert set(rule_ids_of(findings)) == {"RT003", META_UNUSED}

    def test_one_comment_may_carry_several_ids(self, lint_source):
        findings = lint_source(
            "repro/service/mod.py",
            """
            def f(tree, poi):
                tree.insert_poi(poi)  # repro: allow[RT001, RT002]
            """,
        )
        assert findings == []

    def test_unused_suppression_is_reported(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            x = 1  # repro: allow[RT003]
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]
        assert "unused suppression" in findings[0].message

    def test_unknown_rule_id_in_comment_is_reported(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            x = 1  # repro: allow[XX123]
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]
        assert "unknown rule id" in findings[0].message

    def test_multi_id_comment_silences_two_rules_on_one_line(self, lint_source):
        # RT008 (rank ascent at the inner acquisition) and RT009 (sleep
        # under the exclusive locks) land on the same physical line; one
        # allow list covers both.
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            import time

            class Registry:
                def bad(self):
                    with self._dirty_lock:
                        with self._mutex: time.sleep(0.1)  # repro: allow[RT008, RT009]
            """,
        )
        assert findings == []

    def test_unused_ids_in_a_multi_id_comment_report_per_id(self, lint_source):
        # RT008 fires and is suppressed; RT009 does not fire on the line,
        # so that id alone comes back as RT000.
        findings = lint_source(
            "repro/continuous/mod.py",
            """
            class Registry:
                def bad(self):
                    with self._dirty_lock:
                        with self._mutex:  # repro: allow[RT008, RT009]
                            pass
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]
        assert "no RT009 finding" in findings[0].message

    def test_empty_allow_comment_is_reported(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            x = 1  # repro: allow[]
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]
        assert "empty allow[]" in findings[0].message

    def test_several_allow_groups_on_one_line_collapse(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            def f(x):
                assert x  # repro: allow[RT003]  # repro: allow[RT005]
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]
        assert "no RT005 finding" in findings[0].message

    def test_duplicate_ids_in_one_comment_report_once(self, lint_source):
        findings = lint_source(
            "repro/core/mod.py",
            """
            x = 1  # repro: allow[RT003, RT003]
            """,
        )
        assert rule_ids_of(findings) == [META_UNUSED]


class TestParseErrors:
    def test_syntax_error_yields_the_meta_finding(self, lint_source):
        findings = lint_source("repro/core/broken.py", "def f(:\n")
        assert rule_ids_of(findings) == [META_PARSE_ERROR]


class TestSelection:
    def write_fixture(self, tmp_path):
        path = tmp_path / "repro" / "core" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("def f(x):\n    assert x\n")
        return tmp_path

    def test_select_restricts_to_the_given_rules(self, tmp_path):
        root = self.write_fixture(tmp_path)
        findings, files = lint_paths([str(root)], select=["RT003"])
        assert rule_ids_of(findings) == ["RT003"]
        assert files == 1
        findings, _ = lint_paths([str(root)], select=["RT006"])
        assert findings == []

    def test_ignore_drops_rules(self, tmp_path):
        root = self.write_fixture(tmp_path)
        findings, _ = lint_paths([str(root)], ignore=["RT003"])
        assert findings == []

    def test_unknown_ids_raise(self, tmp_path):
        root = self.write_fixture(tmp_path)
        with pytest.raises(ValueError):
            lint_paths([str(root)], select=["RT999"])
        with pytest.raises(ValueError):
            lint_paths([str(root)], ignore=["bogus"])

    def test_pycache_and_hidden_dirs_are_skipped(self, tmp_path):
        root = self.write_fixture(tmp_path)
        for skipped in ("__pycache__", ".hidden"):
            side = root / "repro" / skipped
            side.mkdir()
            (side / "junk.py").write_text("assert True\n")
        findings, files = lint_paths([str(root)])
        assert files == 1
        assert len(findings) == 1


class TestReporters:
    def findings(self, tmp_path):
        path = tmp_path / "repro" / "core" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("def f(x):\n    assert x\n")
        return lint_paths([str(tmp_path)])

    def test_text_report_rows_and_summary(self, tmp_path):
        findings, files = self.findings(tmp_path)
        out = io.StringIO()
        render_text(findings, files, out)
        text = out.getvalue()
        assert "mod.py:2:5: RT003" in text
        assert "1 finding(s) in 1 file(s) checked" in text

    def test_text_report_clean_summary(self):
        out = io.StringIO()
        render_text([], 7, out)
        assert out.getvalue() == "clean: 7 file(s) checked\n"

    def test_json_report_shape_is_stable(self, tmp_path):
        findings, files = self.findings(tmp_path)
        out = io.StringIO()
        render_json(findings, files, out)
        payload = json.loads(out.getvalue())
        assert sorted(payload) == ["counts", "files_checked", "findings", "version"]
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RT003": 1}
        (row,) = payload["findings"]
        assert sorted(row) == ["col", "line", "message", "path", "rule"]
        assert row["rule"] == "RT003"
        assert row["line"] == 2


class TestRegistry:
    def test_all_ten_project_rules_are_registered(self):
        assert sorted(registered_rules()) == [
            "RT001", "RT002", "RT003", "RT004", "RT005", "RT006", "RT007",
            "RT008", "RT009", "RT010",
        ]

    def test_rule_ids_include_the_meta_ids(self):
        ids = rule_ids()
        assert META_UNUSED in ids
        assert META_PARSE_ERROR in ids

    def test_every_rule_documents_itself(self):
        for rule in registered_rules().values():
            assert rule.name
            assert rule.rationale
            assert rule.__doc__
