"""The ``repro lint`` command and the shipped tree's self-check."""

import io
import json
import os
import time

from repro.cli import main
from repro.devtools.engine import _parse_suppressions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestShippedTreeSelfCheck:
    def test_lint_src_is_clean(self):
        code, text = run(["lint", SRC])
        assert code == 0, text
        assert text.startswith("clean:")

    def test_lint_src_stays_inside_the_wall_clock_budget(self):
        # The whole-program pass (call graph + lock flow) must stay
        # cheap enough to run on every push; CI holds the same 30s line.
        start = time.monotonic()
        code, _ = run(["lint", SRC])
        elapsed = time.monotonic() - start
        assert code == 0
        assert elapsed < 30.0, "lint took %.1fs (budget: 30s)" % elapsed

    def test_no_lock_or_wal_suppressions_shipped(self):
        # The acceptance bar for RT001/RT002 is zero allow comments: the
        # lock and WAL disciplines hold structurally, not by exemption.
        # The engine's tokenizer-based parser is used so syntax examples
        # in docstrings do not count.
        offenders = []
        for dirpath, dirnames, filenames in os.walk(SRC):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                for suppression in _parse_suppressions(source):
                    if {"RT001", "RT002"} & set(suppression.rule_ids):
                        offenders.append("%s:%d" % (path, suppression.line))
        assert offenders == []


class TestLintCommand:
    def write_fixture(self, tmp_path):
        path = tmp_path / "repro" / "core" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("def f(x):\n    assert x\n")
        return tmp_path

    def test_findings_exit_1_with_rows(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(["lint", str(root)])
        assert code == 1
        assert "RT003" in text
        assert "1 finding(s)" in text

    def test_json_format_is_machine_readable(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(["lint", str(root), "--format", "json"])
        assert code == 1
        payload = json.loads(text)
        assert payload["version"] == 1
        assert payload["counts"] == {"RT003": 1}
        assert payload["findings"][0]["rule"] == "RT003"

    def test_select_and_ignore(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, _ = run(["lint", str(root), "--select", "RT006"])
        assert code == 0
        code, _ = run(["lint", str(root), "--ignore", "RT003"])
        assert code == 0
        code, text = run(["lint", str(root), "--select", "RT003,RT006"])
        assert code == 1

    def test_unknown_rule_id_exits_2(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(["lint", str(root), "--select", "RT999"])
        assert code == 2
        assert "unknown rule id" in text

    def test_missing_path_exits_2(self, tmp_path):
        code, text = run(["lint", str(tmp_path / "nope")])
        assert code == 2
        assert "no such path" in text

    def test_single_file_argument(self, tmp_path):
        root = self.write_fixture(tmp_path)
        target = root / "repro" / "core" / "mod.py"
        code, text = run(["lint", str(target)])
        assert code == 1
        assert "RT003" in text


class TestLockGraph:
    def write_fixture(self, tmp_path, ascend=False):
        outer = "self._dirty_lock" if ascend else "self._mutex"
        inner = "self._mutex" if ascend else "self._dirty_lock"
        path = tmp_path / "repro" / "continuous" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "class Registry:\n"
            "    def nest(self):\n"
            "        with %s:\n"
            "            with %s:\n"
            "                pass\n" % (outer, inner)
        )
        return tmp_path

    def test_dot_output_and_exit_0_when_acyclic(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(["lint", str(root), "--lock-graph"])
        assert code == 0
        assert text.startswith("digraph lock_order {")
        assert '"registry" -> "dirty"' in text

    def test_json_output_carries_nodes_and_edges(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(
            ["lint", str(root), "--lock-graph", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["acyclic"] is True
        names = [node["name"] for node in payload["nodes"]]
        assert "registry" in names and "dirty" in names
        (edge,) = payload["edges"]
        assert (edge["src"], edge["dst"], edge["ok"]) == (
            "registry", "dirty", True
        )

    def test_violating_edge_exits_1_and_is_marked(self, tmp_path):
        root = self.write_fixture(tmp_path, ascend=True)
        code, text = run(
            ["lint", str(root), "--lock-graph", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(text)
        assert payload["acyclic"] is False
        (edge,) = payload["edges"]
        assert (edge["src"], edge["dst"], edge["ok"]) == (
            "dirty", "registry", False
        )

    def test_lock_graph_requires_the_rt008_pass(self, tmp_path):
        root = self.write_fixture(tmp_path)
        code, text = run(
            ["lint", str(root), "--lock-graph", "--select", "RT003"]
        )
        assert code == 2
        assert "RT008" in text
        code, text = run(
            ["lint", str(root), "--lock-graph", "--ignore", "RT008"]
        )
        assert code == 2

    def test_shipped_tree_graph_is_acyclic(self):
        code, text = run(
            ["lint", SRC, "--lock-graph", "--format", "json"]
        )
        assert code == 0, text
        payload = json.loads(text)
        assert payload["acyclic"] is True
        assert payload["edges"], "the engine nests locks somewhere"
        for edge in payload["edges"]:
            assert edge["ok"] is True, edge
