"""The runtime lock-order witness (repro.devtools.watchdog)."""

import threading

import pytest

from repro.devtools import LockOrderViolation, LockOrderWatchdog
from repro.devtools.lockmodel import (
    ADVANCE_GATE,
    DIRTY,
    REGISTRY,
    SERVICE_RW,
)
from repro.devtools.watchdog import (
    MonitoredLock,
    active,
    disable,
    enable,
    iter_rank_violations,
    monitored_lock,
    monitored_rlock,
)


@pytest.fixture
def watchdog(monkeypatch):
    """A fresh enabled watchdog, with the prior state restored after.

    A fresh instance even when ``REPRO_LOCK_WATCHDOG=1`` already holds a
    process-wide watchdog: tests here trigger violations on purpose, and
    those witnessed edges must not leak into later tests' assertions.
    """
    import repro.devtools.watchdog as watchdog_module

    monkeypatch.setattr(watchdog_module, "_ACTIVE", None)
    yield enable()


class TestWatchdogStacks:
    def test_descending_acquisitions_pass_and_are_witnessed(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(REGISTRY)
        watchdog.note_acquire(DIRTY)
        assert watchdog.held() == (REGISTRY, DIRTY)
        watchdog.note_release(DIRTY)
        watchdog.note_release(REGISTRY)
        assert watchdog.held() == ()
        assert watchdog.witnessed_edges() == [(REGISTRY, DIRTY)]
        assert watchdog.violations() == 0

    def test_rank_ascent_raises_before_blocking(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(DIRTY)
        with pytest.raises(LockOrderViolation, match="strictly descending"):
            watchdog.note_acquire(REGISTRY)
        assert watchdog.violations() == 1

    def test_non_reentrant_reacquisition_raises(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(DIRTY)
        with pytest.raises(LockOrderViolation, match="non-reentrant"):
            watchdog.note_acquire(DIRTY)

    def test_reentrant_reacquisition_is_fine(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(REGISTRY)
        watchdog.note_acquire(REGISTRY)
        assert watchdog.held() == (REGISTRY, REGISTRY)

    def test_release_pops_the_most_recent_acquisition(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(REGISTRY)
        watchdog.note_acquire(REGISTRY)
        watchdog.note_release(REGISTRY)
        assert watchdog.held() == (REGISTRY,)
        watchdog.note_release("never-acquired")  # no-op, no raise
        assert watchdog.held() == (REGISTRY,)

    def test_stacks_are_thread_local(self):
        watchdog = LockOrderWatchdog()
        watchdog.note_acquire(DIRTY)
        seen = []

        def other():
            seen.append(watchdog.held())
            # DIRTY is held by the *other* thread: no ascent here.
            watchdog.note_acquire(REGISTRY)
            seen.append(watchdog.held())

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert seen == [(), (REGISTRY,)]
        assert watchdog.held() == (DIRTY,)


class TestMonitoredFactories:
    def test_factories_return_plain_locks_when_off(self):
        if active() is not None:
            pytest.skip("REPRO_LOCK_WATCHDOG is set for this run")
        lock = monitored_lock(DIRTY)
        rlock = monitored_rlock(REGISTRY)
        assert not isinstance(lock, MonitoredLock)
        assert not isinstance(rlock, MonitoredLock)
        with lock:
            pass
        with rlock:
            pass

    def test_factories_return_monitored_locks_when_on(self, watchdog):
        lock = monitored_lock(DIRTY)
        assert isinstance(lock, MonitoredLock)
        with lock:
            assert watchdog.held() == (DIRTY,)
        assert watchdog.held() == ()

    def test_monitored_nesting_raises_on_ascent(self, watchdog):
        dirty = monitored_lock(DIRTY)
        registry = monitored_rlock(REGISTRY)
        with dirty:
            with pytest.raises(LockOrderViolation):
                registry.acquire()
        # The failed acquisition left no residue on the stack.
        assert watchdog.held() == ()

    def test_failed_nonblocking_acquire_is_unwound(self, watchdog):
        lock = monitored_lock(DIRTY)
        lock.acquire()
        holder = []

        def contend():
            holder.append(lock.acquire(blocking=False))

        worker = threading.Thread(target=contend)
        worker.start()
        worker.join()
        assert holder == [False]
        lock.release()
        assert watchdog.held() == ()


class TestRankViolationHelper:
    def test_ascending_and_self_edges_are_flagged(self):
        edges = [
            (REGISTRY, DIRTY),          # descending: fine
            (DIRTY, REGISTRY),          # ascending: flagged
            (DIRTY, DIRTY),             # non-reentrant self edge: flagged
            (REGISTRY, REGISTRY),       # reentrant self edge: fine
            ("unknown", DIRTY),         # undeclared: ignored here
        ]
        assert list(iter_rank_violations(edges)) == [
            (DIRTY, REGISTRY),
            (DIRTY, DIRTY),
        ]


class TestServiceUnderTheWatchdog:
    def test_subscription_workload_witnesses_only_descending_edges(
        self, watchdog
    ):
        # The cross-validation: drive a real digest/subscribe workload
        # with every instrumented lock reporting, then assert no
        # witnessed nesting ascends the declared hierarchy.
        from repro.service import QueryService

        from tests.service.conftest import build_tree

        tree = build_tree(pois=40, seed=7)
        pushed = []
        with QueryService(tree) as service:
            sub, _ = service.subscribe(
                (10.0, 10.0), 3, k=5, sink=pushed.append
            )
            ids = sorted(tree.poi_ids())[:5]
            for step in range(3):
                epoch = tree.clock.epoch_of(tree.current_time)
                service.digest(epoch, {poi_id: 2 + step for poi_id in ids})
            service.unsubscribe(sub)
        edges = watchdog.witnessed_edges()
        assert edges, "the workload should nest at least one lock pair"
        assert list(iter_rank_violations(edges)) == []
        assert watchdog.violations() == 0
        names = {name for edge in edges for name in edge}
        assert ADVANCE_GATE in names or SERVICE_RW in names
