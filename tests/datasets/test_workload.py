"""Query workload generation (Section 8 setup)."""

import pytest

from repro.datasets.generator import generate
from repro.datasets.workload import (
    DEFAULT_INTERVAL_CHOICES,
    QueryWorkload,
    generate_queries,
)


@pytest.fixture(scope="module")
def dataset():
    return generate("wl", 500, 4000, 365, 2.5, 10, seed=1)


class TestGeneration:
    def test_count_and_defaults(self, dataset):
        workload = generate_queries(dataset, n_queries=100, seed=0)
        assert len(workload) == 100
        for query in workload:
            assert query.k == 10
            assert query.alpha0 == 0.3

    def test_interval_lengths_are_powers_of_two(self, dataset):
        workload = generate_queries(dataset, n_queries=200, seed=1)
        # Lengths beyond the data set span are clipped to it (512 > 365).
        allowed = [min(float(c), dataset.span_days) for c in DEFAULT_INTERVAL_CHOICES]
        for query in workload:
            # Float placement arithmetic: compare up to rounding error.
            assert min(abs(query.interval.length - c) for c in allowed) < 1e-6

    def test_intervals_inside_span(self, dataset):
        workload = generate_queries(dataset, n_queries=200, seed=2)
        for query in workload:
            assert query.interval.start >= dataset.t0
            assert query.interval.end <= dataset.tc + 1e-9

    def test_points_sampled_from_pois(self, dataset):
        locations = set(dataset.positions.values())
        workload = generate_queries(dataset, n_queries=50, seed=3)
        for query in workload:
            assert query.point in locations

    def test_end_anchor(self, dataset):
        workload = generate_queries(dataset, n_queries=50, anchor="end", seed=4)
        for query in workload:
            assert query.interval.end == pytest.approx(dataset.tc)

    def test_lengths_clipped_to_span(self):
        short = generate("short", 100, 500, 10, 2.5, 5, seed=2)
        workload = generate_queries(short, n_queries=50, seed=5)
        for query in workload:
            assert query.interval.length <= short.span_days

    def test_reproducible(self, dataset):
        a = generate_queries(dataset, n_queries=30, seed=6)
        b = generate_queries(dataset, n_queries=30, seed=6)
        assert list(a) == list(b)

    def test_invalid_parameters(self, dataset):
        with pytest.raises(ValueError):
            generate_queries(dataset, n_queries=0)
        with pytest.raises(ValueError):
            generate_queries(dataset, anchor="middle")


class TestWorkloadContainer:
    def test_indexing_and_iteration(self, dataset):
        workload = generate_queries(dataset, n_queries=10, seed=7)
        assert workload[0] in list(workload)

    def test_with_params(self, dataset):
        workload = generate_queries(dataset, n_queries=10, seed=8)
        adjusted = workload.with_params(k=50, alpha0=0.9)
        assert all(q.k == 50 and q.alpha0 == 0.9 for q in adjusted)
        # Points and intervals are preserved.
        for original, changed in zip(workload, adjusted):
            assert original.point == changed.point
            assert original.interval == changed.interval

    def test_with_params_partial(self, dataset):
        workload = generate_queries(dataset, n_queries=5, seed=9)
        adjusted = workload.with_params(k=3)
        assert all(q.k == 3 and q.alpha0 == 0.3 for q in adjusted)
