"""Synthetic LBSN generator: marginals, snapshots, epoch counts."""

import numpy as np
import pytest

from repro.analysis.powerlaw import fit_discrete_powerlaw
from repro.datasets.generator import (
    Dataset,
    generate,
    sample_body,
    sample_powerlaw_tail,
)
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock


@pytest.fixture(scope="module")
def dataset():
    return generate(
        name="test",
        n_pois=4000,
        n_checkins=30000,
        span_days=365,
        beta=2.5,
        xmin=20,
        threshold=10,
        seed=9,
    )


class TestBasicShape:
    def test_counts(self, dataset):
        assert dataset.num_pois == 4000
        # Sampling noise: total within 25% of the target.
        assert dataset.total_checkins() == pytest.approx(30000, rel=0.25)

    def test_positions_inside_world(self, dataset):
        for x, y in dataset.positions.values():
            assert dataset.world.contains_point((x, y))

    def test_times_inside_span(self, dataset):
        for times in dataset.checkin_times.values():
            if times.size:
                assert times.min() >= dataset.t0
                assert times.max() <= dataset.tc

    def test_times_sorted(self, dataset):
        for times in dataset.checkin_times.values():
            assert np.all(np.diff(times) >= 0)

    def test_reproducible(self):
        a = generate("r", 500, 3000, 100, 2.5, 10, seed=3)
        b = generate("r", 500, 3000, 100, 2.5, 10, seed=3)
        assert a.positions == b.positions
        for poi_id in a.positions:
            assert np.array_equal(a.checkin_times[poi_id], b.checkin_times[poi_id])

    def test_different_seeds_differ(self):
        a = generate("r", 500, 3000, 100, 2.5, 10, seed=3)
        b = generate("r", 500, 3000, 100, 2.5, 10, seed=4)
        assert a.positions != b.positions

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate("r", 0, 0, 100, 2.5, 10)


class TestAggregateMarginal:
    def test_powerlaw_tail_recovered(self, dataset):
        totals = [v for v in dataset.totals().values() if v > 0]
        fit = fit_discrete_powerlaw(totals)
        assert fit.beta == pytest.approx(2.5, abs=0.45)

    def test_effective_pois_respect_threshold(self, dataset):
        effective = set(dataset.effective_poi_ids())
        for poi_id, total in dataset.totals().items():
            assert (poi_id in effective) == (total >= dataset.threshold)

    def test_tail_sampler_bounds(self):
        rng = np.random.default_rng(0)
        sample = sample_powerlaw_tail(rng, beta=2.5, xmin=30, size=1000)
        assert sample.min() >= 30

    def test_body_sampler_bounds(self):
        rng = np.random.default_rng(0)
        sample = sample_body(rng, xmin=30, body_mean=3.0, size=1000)
        assert sample.min() >= 1
        assert sample.max() < 30

    def test_body_sampler_mean_near_target(self):
        rng = np.random.default_rng(1)
        sample = sample_body(rng, xmin=50, body_mean=4.0, size=20000)
        assert sample.mean() == pytest.approx(4.0, rel=0.2)

    def test_heavy_threshold_still_populates_tail(self):
        # The GW regime: mean rate far below xmin used to zero the tail.
        data = generate(
            "gw-like", 8000, 40000, 365, 2.82, 85, threshold=100, seed=2
        )
        assert len(data.effective_poi_ids()) > 0


class TestSnapshots:
    def test_snapshot_truncates_checkins(self, dataset):
        snap = dataset.snapshot(0.5)
        cut = dataset.t0 + 0.5 * dataset.span_days
        assert snap.tc == cut
        for times in snap.checkin_times.values():
            if times.size:
                assert times.max() <= cut
        assert snap.total_checkins() < dataset.total_checkins()

    def test_snapshot_fraction_one_is_identity(self, dataset):
        snap = dataset.snapshot(1.0)
        assert snap.total_checkins() == dataset.total_checkins()

    def test_snapshot_monotone_in_fraction(self, dataset):
        totals = [dataset.snapshot(f).total_checkins() for f in (0.2, 0.4, 0.8)]
        assert totals == sorted(totals)

    def test_growth_skew(self, dataset):
        # Later-half activity should exceed the first half (LBSN growth).
        early = dataset.snapshot(0.5).total_checkins()
        late = dataset.total_checkins() - early
        assert late > early

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.snapshot(0.0)
        with pytest.raises(ValueError):
            dataset.snapshot(1.5)


class TestEpochCounts:
    def test_counts_match_totals(self, dataset):
        clock = EpochClock(dataset.t0, 7.0)
        counts = dataset.epoch_counts(clock)
        for poi_id, per_epoch in counts.items():
            assert sum(per_epoch.values()) == dataset.checkin_times[poi_id].size

    def test_epoch_indices_in_range(self, dataset):
        clock = EpochClock(dataset.t0, 7.0)
        max_epoch = clock.num_epochs(dataset.tc)
        for per_epoch in dataset.epoch_counts(clock).values():
            for epoch in per_epoch:
                assert 0 <= epoch < max_epoch

    def test_varied_clock_supported(self, dataset):
        clock = VariedEpochClock.exponential(dataset.t0, 7.0, count=6)
        counts = dataset.epoch_counts(clock, poi_ids=dataset.effective_poi_ids()[:5])
        for poi_id, per_epoch in counts.items():
            assert sum(per_epoch.values()) == dataset.checkin_times[poi_id].size

    def test_subset_of_pois(self, dataset):
        clock = EpochClock(dataset.t0, 7.0)
        subset = dataset.effective_poi_ids()[:3]
        counts = dataset.epoch_counts(clock, poi_ids=subset)
        assert sorted(counts) == sorted(subset)


class TestDatasetValidation:
    def test_tc_must_exceed_t0(self):
        with pytest.raises(ValueError):
            Dataset("bad", Rect((0, 0), (1, 1)), 5.0, 5.0, {}, {})
