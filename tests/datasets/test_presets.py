"""Data set presets mirroring Tables 2 and 4."""

import pytest

from repro.datasets.presets import DATASET_SPECS, make


class TestSpecs:
    def test_all_four_present(self):
        assert set(DATASET_SPECS) == {"NYC", "LA", "GW", "GS"}

    def test_table4_statistics(self):
        assert DATASET_SPECS["NYC"].n_pois == 72626
        assert DATASET_SPECS["NYC"].n_checkins == 237784
        assert DATASET_SPECS["GW"].n_pois == 1280969
        assert DATASET_SPECS["GW"].n_checkins == 6442803
        assert DATASET_SPECS["LA"].n_pois == 45591
        assert DATASET_SPECS["GS"].n_pois == 182968

    def test_table2_exponents(self):
        assert DATASET_SPECS["NYC"].beta == 3.20
        assert DATASET_SPECS["LA"].beta == 3.07
        assert DATASET_SPECS["GW"].beta == 2.82
        assert DATASET_SPECS["GS"].beta == 2.19

    def test_table2_xmin(self):
        assert DATASET_SPECS["NYC"].xmin == 31
        assert DATASET_SPECS["LA"].xmin == 16
        assert DATASET_SPECS["GW"].xmin == 85
        assert DATASET_SPECS["GS"].xmin == 59

    def test_effective_thresholds(self):
        # Section 8: 15, 10, 100 and 50 check-ins respectively.
        assert DATASET_SPECS["NYC"].threshold == 15
        assert DATASET_SPECS["LA"].threshold == 10
        assert DATASET_SPECS["GW"].threshold == 100
        assert DATASET_SPECS["GS"].threshold == 50


class TestMake:
    def test_scale_applies_to_pois_and_checkins(self):
        data = make("NYC", scale=0.01, seed=0)
        assert data.num_pois == int(72626 * 0.01)
        assert data.total_checkins() == pytest.approx(237784 * 0.01, rel=0.3)

    def test_case_insensitive(self):
        assert make("nyc", scale=0.005, seed=0).name == "NYC"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make("SF")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make("NYC", scale=0.0)
        with pytest.raises(ValueError):
            make("NYC", scale=1.5)

    def test_overrides_forwarded(self):
        data = make("LA", scale=0.01, seed=0, threshold=1)
        assert data.threshold == 1

    @pytest.mark.parametrize("name", ["NYC", "LA", "GW", "GS"])
    def test_every_preset_has_effective_pois(self, name):
        data = make(name, scale=0.02, seed=1)
        assert len(data.effective_poi_ids()) > 0

    def test_span_days_preserved(self):
        data = make("GS", scale=0.01, seed=0)
        assert data.span_days == DATASET_SPECS["GS"].span_days
