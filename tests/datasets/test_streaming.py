"""Epoch streaming and tree catch-up."""

import pytest

from repro import TARTree, TimeInterval, datasets
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.datasets.streaming import catch_up, epoch_stream
from repro.temporal.epochs import EpochClock


@pytest.fixture(scope="module")
def data():
    return datasets.make("LA", scale=0.03, seed=17)


class TestEpochStream:
    def test_stream_covers_all_checkins(self, data):
        clock = EpochClock(data.t0, 7.0)
        effective = data.effective_poi_ids()
        streamed = sum(
            sum(counts.values()) for _, counts in epoch_stream(data, clock)
        )
        expected = sum(data.checkin_times[p].size for p in effective)
        assert streamed == expected

    def test_stream_is_epoch_ordered(self, data):
        clock = EpochClock(data.t0, 7.0)
        epochs = [epoch for epoch, _ in epoch_stream(data, clock)]
        assert epochs == sorted(epochs)

    def test_time_window_restricts_epochs(self, data):
        clock = EpochClock(data.t0, 7.0)
        start = data.t0 + 100
        end = data.t0 + 200
        for epoch, _ in epoch_stream(data, clock, start_time=start, end_time=end):
            ts, te = clock.bounds(epoch)
            assert te > start - 7.0
            assert ts <= end

    def test_poi_subset(self, data):
        clock = EpochClock(data.t0, 7.0)
        subset = data.effective_poi_ids()[:3]
        for _, counts in epoch_stream(data, clock, poi_ids=subset):
            assert set(counts) <= set(subset)

    def test_inverted_range_is_explicitly_empty(self, data):
        clock = EpochClock(data.t0, 7.0)
        stream = epoch_stream(
            data, clock, start_time=data.t0 + 50, end_time=data.t0
        )
        assert list(stream) == []

    def test_stream_does_no_work_until_pulled(self, data):
        # A subscription driver may hold a stream open indefinitely;
        # creating one must not regroup anything up front.
        calls = []

        class Spy:
            def epoch_counts(self, clock, poi_ids=None):
                calls.append(poi_ids)
                return data.epoch_counts(clock, poi_ids)

        clock = EpochClock(data.t0, 7.0)
        stream = epoch_stream(Spy(), clock, start_time=data.t0,
                              end_time=data.tc)
        assert calls == []  # generator: nothing ran yet
        next(stream)
        assert len(calls) == 1
        stream.close()

    def test_lazy_grouping_matches_eager_regroup(self, data):
        clock = EpochClock(data.t0, 7.0)
        eager = {}
        for poi_id, epochs in data.epoch_counts(clock).items():
            for epoch, count in epochs.items():
                eager.setdefault(epoch, {})[poi_id] = count
        streamed = dict(epoch_stream(data, clock))
        assert streamed == eager

    def test_early_termination_is_clean(self, data):
        import itertools

        clock = EpochClock(data.t0, 7.0)
        stream = epoch_stream(data, clock)
        head = list(itertools.islice(stream, 2))
        stream.close()  # abandoning the generator must not raise
        assert len(head) == 2
        assert head[0][0] < head[1][0]


class TestCatchUp:
    def test_catch_up_reconciles_exactly(self, data):
        tree = TARTree.build(data.snapshot(0.5), until_time=data.tc)
        digested = catch_up(tree, data)
        assert digested > 0
        tree.check_invariants()
        reference = data.epoch_counts(tree.clock, list(tree.poi_ids()))
        for poi_id, epochs in reference.items():
            assert dict(tree.poi_tia(poi_id).items()) == epochs

    def test_catch_up_is_idempotent(self, data):
        tree = TARTree.build(data.snapshot(0.5), until_time=data.tc)
        catch_up(tree, data)
        assert catch_up(tree, data) == 0

    def test_queries_after_catch_up_match_scan(self, data):
        tree = TARTree.build(data.snapshot(0.5), until_time=data.tc)
        catch_up(tree, data)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(data.t0, data.tc), k=10)
        bfs = [round(r.score, 9) for r in knnta_search(tree, query)]
        scan = [round(r.score, 9) for r in sequential_scan(tree, query)]
        assert bfs == scan

    def test_max_kind_rejected(self, data):
        tree = TARTree.build(data.snapshot(0.5), until_time=data.tc,
                             aggregate_kind="max")
        with pytest.raises(ValueError):
            catch_up(tree, data)


class TestBrowse:
    def test_browse_matches_search_prefixes(self, data):
        import itertools

        from repro.core.knnta import knnta_browse

        tree = TARTree.build(data)
        query = KNNTAQuery((30.0, 30.0), TimeInterval(0, 300), k=1)
        browsed = list(itertools.islice(knnta_browse(tree, query), 25))
        searched = knnta_search(tree, query._replace(k=25))
        assert [round(r.score, 10) for r in browsed] == [
            round(r.score, 10) for r in searched
        ]

    def test_browse_exhausts_to_full_ranking(self, data):
        from repro.core.knnta import knnta_browse, knnta_search_exhaustive

        tree = TARTree.build(data.snapshot(0.4), until_time=data.tc)
        query = KNNTAQuery((70.0, 10.0), TimeInterval(0, 300), k=1)
        browsed = list(knnta_browse(tree, query))
        assert len(browsed) == len(tree)
        full = knnta_search_exhaustive(tree, query)
        assert [r.poi_id for r in browsed] == [r.poi_id for r in full]

    def test_browse_charges_io_lazily(self, data):
        from repro.core.knnta import knnta_browse

        # Small nodes give the tree enough structure for laziness to show.
        tree = TARTree.build(data, node_size=256)
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 300), k=1)
        snap = tree.stats.snapshot()
        iterator = knnta_browse(tree, query)
        next(iterator)
        few = tree.stats.diff(snap).rtree_nodes
        list(iterator)  # exhaust: every node ends up accessed exactly once
        everything = tree.stats.diff(snap).rtree_nodes
        assert few < tree.node_count()
        assert few <= everything == tree.node_count()
