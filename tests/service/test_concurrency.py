"""Concurrency guarantees: snapshot-consistent reads, crash-safe writes.

Two stress tests back the service's coordination story:

* N reader threads query through the service while one writer mutates
  through it.  Every answer must equal the tree's canonical answer at
  *some* mutation version — a torn read (half-applied insert visible to
  a query) would produce an answer matching no version.
* A writer streams WAL-logged inserts while the live state directory is
  copied mid-flight ("kill -9 at an arbitrary instant").  Every copy
  must recover to a valid tree whose applied mutations form a prefix of
  the writer's sequence.
"""

import random
import shutil
import threading

import pytest

from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.core.tar_tree import POI
from repro.reliability.recovery import CheckpointedIngest, recover
from repro.reliability.validate import validate_tree
from repro.service import QueryService, ServiceConfig
from repro.temporal.epochs import TimeInterval

from tests.service.conftest import build_tree

QUERY = KNNTAQuery(point=(10.0, 10.0), interval=TimeInterval(2, 6), k=8)


def freeze(rows):
    """Hashable form of a result list, for set membership checks."""
    return tuple((r.poi_id, round(r.score, 12)) for r in rows)


@pytest.mark.timeout(300)
def test_readers_always_see_a_committed_version():
    tree = build_tree(pois=120, seed=3)
    config = ServiceConfig(workers=3, batch_size=8, linger=0.002)
    service = QueryService(tree, config=config)

    versions = {freeze(tree.query(QUERY))}
    versions_lock = threading.Lock()
    stop = threading.Event()
    errors = []

    def writer():
        rng = random.Random(99)
        try:
            for step in range(40):
                poi_id = 10_000 + step
                # Land near the query point with heavy check-ins so each
                # mutation actually changes the top-k.
                service.insert(
                    POI(poi_id, 10.0 + rng.random(), 10.0 + rng.random()),
                    {e: 40 + step for e in range(2, 7)},
                )
                with versions_lock:
                    versions.add(freeze(tree.query(QUERY)))
                if step % 5 == 4:
                    service.delete(10_000 + step - 4)
                    with versions_lock:
                        versions.add(freeze(tree.query(QUERY)))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            stop.set()

    observed = []

    def reader(index):
        rng = random.Random(index)
        rows = []
        try:
            while not stop.is_set():
                rows.append(freeze(service.query(QUERY, timeout=60)))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        observed.append(rows)

    readers = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    writer_thread = threading.Thread(target=writer)
    for t in readers:
        t.start()
    writer_thread.start()
    writer_thread.join(timeout=240)
    for t in readers:
        t.join(timeout=60)
    service.close()

    assert not errors, errors
    total = sum(len(rows) for rows in observed)
    assert total > 0
    # Every observed answer is a committed version — no torn reads.
    for rows in observed:
        for answer in rows:
            assert answer in versions
    # And the final state is exactly right, per the exhaustive baseline.
    assert freeze(tree.query(QUERY)) == freeze(sequential_scan(tree, QUERY))
    assert validate_tree(tree).ok


@pytest.mark.timeout(300)
def test_state_dir_copied_mid_write_recovers_to_a_prefix(tmp_path):
    tree = build_tree(pois=40, seed=5)
    base_ids = set(tree.poi_ids())
    state_dir = tmp_path / "live"
    ingest = CheckpointedIngest(tree, str(state_dir))
    service = QueryService(tree, ingest=ingest, config=ServiceConfig(workers=2))

    inserts = 60
    done = threading.Event()
    errors = []

    def writer():
        rng = random.Random(13)
        try:
            for step in range(inserts):
                history = {e: rng.randrange(1, 9) for e in range(2, 8)}
                service.insert(
                    POI(20_000 + step, rng.random() * 20, rng.random() * 20), history
                )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            while not done.is_set():
                service.query(QUERY, timeout=60)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    copies = []
    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    # Snapshot the live directory while writes are in flight — the moral
    # equivalent of pulling the plug at three arbitrary instants.
    for index in range(3):
        target = tmp_path / ("crash-%d" % index)
        shutil.copytree(str(state_dir), str(target))
        copies.append(target)
    writer_thread.join(timeout=240)
    reader_thread.join(timeout=60)
    service.close()
    ingest.close()
    assert not errors, errors

    for target in copies:
        report = recover(str(target))
        recovered = report.tree
        assert validate_tree(recovered).ok
        new_ids = sorted(
            poi_id for poi_id in recovered.poi_ids() if poi_id not in base_ids
        )
        # Inserts are sequential and WAL-ordered: whatever survived the
        # copy must be a gap-free prefix of the writer's sequence.
        assert new_ids == [20_000 + i for i in range(len(new_ids))]
        # The recovered tree answers queries exactly.
        assert freeze(recovered.query(QUERY)) == freeze(
            sequential_scan(recovered, QUERY)
        )

    # The live directory itself recovers to the full sequence.
    report = recover(str(state_dir))
    assert len(report.tree) == len(base_ids) + inserts
    assert validate_tree(report.tree).ok
