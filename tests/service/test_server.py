"""The JSON-lines wire protocol end to end over a real socket."""

import json
import socket

import pytest

from repro.core.query import KNNTAQuery
from repro.service import JsonLineServer, QueryService, ServiceConfig
from repro.temporal.epochs import TimeInterval


@pytest.fixture
def served(small_tree):
    service = QueryService(small_tree, config=ServiceConfig(linger=0.0))
    server = JsonLineServer(service).start()
    yield small_tree, server
    server.shutdown()
    service.close()


class Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.file = self.sock.makefile("rwb")

    def rpc(self, payload):
        self.file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.file.flush()
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def close(self):
        self.sock.close()


@pytest.fixture
def client(served):
    c = Client(served[1].address)
    yield c
    c.close()


@pytest.mark.timeout(120)
class TestWireProtocol:
    def test_ping(self, client):
        from repro.service.server import PROTO_VERSION

        assert client.rpc({"op": "ping"}) == {
            "ok": True,
            "pong": True,
            "proto": PROTO_VERSION,
        }

    def test_query_round_trip_matches_direct_answer(self, served, client):
        tree, _ = served
        response = client.rpc(
            {"op": "query", "point": [5, 5], "interval": [2, 6], "k": 4}
        )
        assert response["ok"]
        expected = tree.query(
            KNNTAQuery(point=(5.0, 5.0), interval=TimeInterval(2, 6), k=4)
        )
        assert [row["poi_id"] for row in response["results"]] == [
            r.poi_id for r in expected
        ]
        assert response["results"][0]["score"] == pytest.approx(expected[0].score)
        assert response["batch_size"] == 1
        assert response["cost"]["rtree_nodes"] > 0

    def test_insert_query_delete_cycle(self, served, client):
        tree, _ = served
        response = client.rpc(
            {
                "op": "insert",
                "poi_id": 4242,
                "point": [5.0, 5.0],
                "aggregates": [[2, 50], [3, 50]],
            }
        )
        assert response["ok"]
        assert 4242 in tree
        # The new, heavily-checked-in POI at the query point must rank.
        response = client.rpc(
            {"op": "query", "point": [5, 5], "interval": [2, 6], "k": 3}
        )
        assert 4242 in [row["poi_id"] for row in response["results"]]
        assert client.rpc({"op": "delete", "poi_id": 4242})["deleted"]
        assert 4242 not in tree
        assert not client.rpc({"op": "delete", "poi_id": 4242})["deleted"]

    def test_digest_applies_counts(self, served, client):
        tree, _ = served
        poi_id = next(iter(tree.poi_ids()))
        response = client.rpc(
            {"op": "digest", "epoch": 10, "counts": [[poi_id, 7]]}
        )
        assert response["ok"]
        assert tree.poi_tia(poi_id).get(10) == 7

    def test_stats_op(self, client):
        client.rpc({"op": "query", "point": [1, 1], "interval": [2, 6], "k": 2})
        response = client.rpc({"op": "stats"})
        assert response["ok"]
        assert response["stats"]["completed"] >= 1
        assert "scrubber" in response["stats"]

    def test_scrub_op(self, client):
        response = client.rpc({"op": "scrub", "budget": 4})
        assert response["ok"]
        assert 0 < response["nodes_checked"] <= 4

    def test_bad_requests_keep_the_connection_alive(self, client):
        assert client.rpc({"op": "nope"})["code"] == "bad-request"
        assert client.rpc({"op": "query"})["code"] == "bad-request"
        assert client.rpc({"op": "query", "point": [1], "interval": [2, 6]})[
            "code"
        ] == "bad-request"
        response = client.rpc([1, 2, 3])
        assert response["code"] == "bad-request"
        # Still serving:
        assert client.rpc({"op": "ping"})["ok"]

    def test_malformed_json_reports_error(self, served):
        c = Client(served[1].address)
        c.file.write(b"this is not json\n")
        c.file.flush()
        response = json.loads(c.file.readline())
        assert response["ok"] is False
        c.close()

    def test_shutdown_stops_the_accept_loop(self, small_tree):
        service = QueryService(small_tree, config=ServiceConfig(linger=0.0))
        server = JsonLineServer(service).start()
        c = Client(server.address)
        assert c.rpc({"op": "shutdown"})["bye"]
        c.close()
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
        server._server.server_close()
        service.close()


@pytest.mark.timeout(120)
class TestOperatorSurface:
    def test_internal_failures_are_redacted_on_the_wire(self, served, client):
        # RT005: the wire carries a stable message; the exception's type
        # and text stay server-side for the operator.
        _, server = served
        secret = "connection string postgres://user:hunter2@db"

        def boom():
            raise RuntimeError(secret)

        server.service.stats = boom
        response = client.rpc({"op": "stats"})
        from repro.service.server import PROTO_VERSION

        assert response == {
            "ok": False,
            "code": "error",
            "error": JsonLineServer.INTERNAL_ERROR_MESSAGE,
            "proto": PROTO_VERSION,
        }
        assert secret not in json.dumps(response)
        assert server.errors == 1
        assert server.last_error == "RuntimeError: %s" % secret
        # The connection survives a redacted failure.
        assert client.rpc({"op": "ping"})["ok"]

    def test_health_op_single_tree_stub(self, client):
        response = client.rpc({"op": "health"})
        assert response["ok"]
        health = response["health"]
        assert health["shards"] == []
        assert health["events"] == []
        assert health["closed"] is False
        assert health["worker_deaths"] == 0


@pytest.fixture
def cluster_served_factory(small_dataset):
    """Build a 4-shard cluster with every shard fatally failing its
    query dispatch, served over the wire; yields a factory keyed on the
    coordinator's degradation policy and closes everything after."""
    from repro import ClusterTree, ResilienceConfig
    from repro.reliability.faults import FaultInjector, constant

    opened = []

    def serve(allow_degraded):
        injector = FaultInjector(seed=0)
        cluster = ClusterTree.build(
            small_dataset,
            num_shards=4,
            resilience=ResilienceConfig(sleep=lambda _: None),
            injector=injector,
            allow_degraded=allow_degraded,
        )
        for index in range(len(cluster.shards)):
            injector.configure(
                "shard.%d.query" % index, schedule=constant(1.0), kind="fatal"
            )
        service = QueryService(cluster, config=ServiceConfig(linger=0.0))
        server = JsonLineServer(service).start()
        opened.append((cluster, service, server))
        return cluster, server

    yield serve
    for cluster, service, server in opened:
        server.shutdown()
        service.close()
        cluster.close()


@pytest.mark.timeout(120)
class TestDegradedServing:
    """The degraded-answer protocol fields over the wire (cluster mode)."""

    def query_payload(self, cluster):
        end = cluster.current_time
        return {
            "op": "query",
            "point": [0.4, 0.6],
            "interval": [end - 28.0, end],
            "k": 5,
            "alpha0": 0.3,
        }

    def test_allow_degraded_reports_coverage_and_bound(
        self, cluster_served_factory
    ):
        cluster, server = cluster_served_factory(allow_degraded=True)
        client = Client(server.address)
        try:
            response = client.rpc(self.query_payload(cluster))
            assert response["ok"]
            assert response["degraded"] is True
            assert sorted(response["missed_shards"]) == [0, 1, 2, 3]
            assert response["coverage"] == 0.0
            assert isinstance(response["score_bound"], float)
            assert response["results"] == []
            # An untouched single-tree answer does not carry the fields.
            assert server.service.stats()["degraded"] >= 1
        finally:
            client.close()

    def test_strict_policy_maps_to_the_degraded_error_code(
        self, cluster_served_factory
    ):
        cluster, server = cluster_served_factory(allow_degraded=False)
        client = Client(server.address)
        try:
            response = client.rpc(self.query_payload(cluster))
            assert response["ok"] is False
            assert response["code"] == "degraded"
            assert sorted(response["missed_shards"]) == [0, 1, 2, 3]
            assert response["coverage"] == 0.0
            assert isinstance(response["score_bound"], float)
            # Degradation is an explicit protocol outcome, not an
            # internal error: nothing was redacted and the connection
            # keeps serving.
            assert server.errors == 0
            assert client.rpc({"op": "ping"})["ok"]
        finally:
            client.close()

    def test_exact_cluster_answers_are_flagged_not_degraded(
        self, small_dataset
    ):
        from repro import ClusterTree

        cluster = ClusterTree.build(small_dataset, num_shards=4)
        service = QueryService(cluster, config=ServiceConfig(linger=0.0))
        server = JsonLineServer(service).start()
        client = Client(server.address)
        try:
            response = client.rpc(self.query_payload(cluster))
            assert response["ok"]
            assert response["degraded"] is False
            assert "missed_shards" not in response
            assert "coverage" not in response
            assert len(response["results"]) == 5
        finally:
            client.close()
            server.shutdown()
            service.close()
            cluster.close()


@pytest.mark.timeout(120)
class TestProtoNegotiation:
    """Wire-protocol versioning: ``proto`` on every frame, ``hello``
    handshake, and the stable ``proto-mismatch`` refusal."""

    def test_every_response_frame_carries_proto(self, client):
        from repro.service.server import PROTO_VERSION

        assert client.rpc({"op": "ping"})["proto"] == PROTO_VERSION
        assert client.rpc({"op": "nope"})["proto"] == PROTO_VERSION
        assert client.rpc(
            {"op": "query", "point": [1, 1], "interval": [2, 6], "k": 2}
        )["proto"] == PROTO_VERSION

    def test_hello_handshake(self, client):
        from repro.service.server import PROTO_VERSION

        response = client.rpc({"op": "hello", "proto": PROTO_VERSION})
        assert response["ok"]
        assert response["proto"] == PROTO_VERSION

    def test_mismatch_refused_with_stable_code(self, client):
        from repro.service.server import PROTO_VERSION

        response = client.rpc({"op": "hello", "proto": PROTO_VERSION + 1})
        assert response["ok"] is False
        assert response["code"] == "proto-mismatch"
        assert response["proto"] == PROTO_VERSION
        # The refusal names both versions, and it applies to any op —
        # a drifted peer is refused before its payload is interpreted.
        assert str(PROTO_VERSION + 1) in response["error"]
        response = client.rpc(
            {"op": "query", "point": [1, 1], "interval": [2, 6],
             "proto": PROTO_VERSION + 1}
        )
        assert response["code"] == "proto-mismatch"
        # The connection survives the refusal; a corrected peer serves.
        assert client.rpc({"op": "ping", "proto": PROTO_VERSION})["ok"]

    def test_unversioned_requests_still_serve(self, client):
        # Pre-versioning peers send no ``proto`` field: they are assumed
        # current rather than refused, so rolling upgrades can proceed.
        assert client.rpc({"op": "ping"})["ok"]
