"""The JSON-lines wire protocol end to end over a real socket."""

import json
import socket

import pytest

from repro.core.query import KNNTAQuery
from repro.service import JsonLineServer, QueryService, ServiceConfig
from repro.temporal.epochs import TimeInterval


@pytest.fixture
def served(small_tree):
    service = QueryService(small_tree, config=ServiceConfig(linger=0.0))
    server = JsonLineServer(service).start()
    yield small_tree, server
    server.shutdown()
    service.close()


class Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.file = self.sock.makefile("rwb")

    def rpc(self, payload):
        self.file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.file.flush()
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def close(self):
        self.sock.close()


@pytest.fixture
def client(served):
    c = Client(served[1].address)
    yield c
    c.close()


@pytest.mark.timeout(120)
class TestWireProtocol:
    def test_ping(self, client):
        assert client.rpc({"op": "ping"}) == {"ok": True, "pong": True}

    def test_query_round_trip_matches_direct_answer(self, served, client):
        tree, _ = served
        response = client.rpc(
            {"op": "query", "point": [5, 5], "interval": [2, 6], "k": 4}
        )
        assert response["ok"]
        expected = tree.query(
            KNNTAQuery(point=(5.0, 5.0), interval=TimeInterval(2, 6), k=4)
        )
        assert [row["poi_id"] for row in response["results"]] == [
            r.poi_id for r in expected
        ]
        assert response["results"][0]["score"] == pytest.approx(expected[0].score)
        assert response["batch_size"] == 1
        assert response["cost"]["rtree_nodes"] > 0

    def test_insert_query_delete_cycle(self, served, client):
        tree, _ = served
        response = client.rpc(
            {
                "op": "insert",
                "poi_id": 4242,
                "point": [5.0, 5.0],
                "aggregates": [[2, 50], [3, 50]],
            }
        )
        assert response["ok"]
        assert 4242 in tree
        # The new, heavily-checked-in POI at the query point must rank.
        response = client.rpc(
            {"op": "query", "point": [5, 5], "interval": [2, 6], "k": 3}
        )
        assert 4242 in [row["poi_id"] for row in response["results"]]
        assert client.rpc({"op": "delete", "poi_id": 4242})["deleted"]
        assert 4242 not in tree
        assert not client.rpc({"op": "delete", "poi_id": 4242})["deleted"]

    def test_digest_applies_counts(self, served, client):
        tree, _ = served
        poi_id = next(iter(tree.poi_ids()))
        response = client.rpc(
            {"op": "digest", "epoch": 10, "counts": [[poi_id, 7]]}
        )
        assert response["ok"]
        assert tree.poi_tia(poi_id).get(10) == 7

    def test_stats_op(self, client):
        client.rpc({"op": "query", "point": [1, 1], "interval": [2, 6], "k": 2})
        response = client.rpc({"op": "stats"})
        assert response["ok"]
        assert response["stats"]["completed"] >= 1
        assert "scrubber" in response["stats"]

    def test_scrub_op(self, client):
        response = client.rpc({"op": "scrub", "budget": 4})
        assert response["ok"]
        assert 0 < response["nodes_checked"] <= 4

    def test_bad_requests_keep_the_connection_alive(self, client):
        assert client.rpc({"op": "nope"})["code"] == "bad-request"
        assert client.rpc({"op": "query"})["code"] == "bad-request"
        assert client.rpc({"op": "query", "point": [1], "interval": [2, 6]})[
            "code"
        ] == "bad-request"
        response = client.rpc([1, 2, 3])
        assert response["code"] == "bad-request"
        # Still serving:
        assert client.rpc({"op": "ping"})["ok"]

    def test_malformed_json_reports_error(self, served):
        c = Client(served[1].address)
        c.file.write(b"this is not json\n")
        c.file.flush()
        response = json.loads(c.file.readline())
        assert response["ok"] is False
        c.close()

    def test_shutdown_stops_the_accept_loop(self, small_tree):
        service = QueryService(small_tree, config=ServiceConfig(linger=0.0))
        server = JsonLineServer(service).start()
        c = Client(server.address)
        assert c.rpc({"op": "shutdown"})["bye"]
        c.close()
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
        server._server.server_close()
        service.close()
