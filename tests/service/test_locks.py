"""ReadWriteLock semantics: sharing, exclusion, writer preference."""

import threading
import time

import pytest

from repro.service.locks import ReadWriteLock


@pytest.mark.timeout(60)
def test_readers_share():
    lock = ReadWriteLock()
    entered = []
    barrier = threading.Barrier(3, timeout=10)

    def reader():
        with lock.read_locked():
            entered.append(1)
            barrier.wait()  # all three must be inside simultaneously

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(entered) == 3


@pytest.mark.timeout(60)
def test_writer_excludes_readers_and_writers():
    lock = ReadWriteLock()
    assert lock.acquire_write(timeout=1)
    assert not lock.acquire_read(timeout=0.05)
    assert not lock.acquire_write(timeout=0.05)
    lock.release_write()
    assert lock.acquire_read(timeout=1)
    lock.release_read()


@pytest.mark.timeout(60)
def test_waiting_writer_blocks_new_readers():
    lock = ReadWriteLock()
    lock.acquire_read()
    writer_started = threading.Event()
    writer_done = threading.Event()

    def writer():
        writer_started.set()
        lock.acquire_write()
        lock.release_write()
        writer_done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    writer_started.wait(5)
    # Give the writer time to register as waiting, then try to read:
    # write preference must turn us away while it queues.
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        if lock._writers_waiting:
            break
        time.sleep(0.005)
    assert not lock.acquire_read(timeout=0.05)
    lock.release_read()
    thread.join(timeout=5)
    assert writer_done.is_set()
    # With the writer gone, readers flow again.
    assert lock.acquire_read(timeout=1)
    lock.release_read()


def test_unbalanced_releases_raise():
    lock = ReadWriteLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()


@pytest.mark.timeout(60)
def test_write_timeout_leaves_lock_usable():
    lock = ReadWriteLock()
    lock.acquire_read()
    assert not lock.acquire_write(timeout=0.05)
    # The timed-out writer must not leave a phantom waiter behind.
    assert lock._writers_waiting == 0
    assert lock.acquire_read(timeout=1)
    lock.release_read()
    lock.release_read()
    assert lock.acquire_write(timeout=1)
    lock.release_write()
