"""Scrubber behaviour: detection, repair, manifests, non-blocking ticks."""

import threading

import pytest

from repro.core.query import KNNTAQuery
from repro.core.tar_tree import POI
from repro.reliability.validate import validate_tree
from repro.service.locks import ReadWriteLock
from repro.service.scrubber import Scrubber, fingerprint_mapping
from repro.temporal.epochs import TimeInterval

from tests.service.conftest import build_tree


def make_scrubber(tree, **kwargs):
    return Scrubber(tree, ReadWriteLock(), **kwargs)


def first_internal_entry(tree):
    """Some entry whose TIA is an internal (re-derivable) aggregate."""
    stack = [tree.root]
    while stack:
        node = stack.pop()
        for entry in node.entries:
            if entry.child is not None:
                return node, entry
        stack.extend(e.child for e in node.entries if e.child is not None)
    pytest.skip("tree too small to have internal entries")


def test_fingerprint_mapping_matches_tia_fingerprint(small_tree):
    poi_id = next(iter(small_tree.poi_ids()))
    tia = small_tree.poi_tia(poi_id)
    assert fingerprint_mapping(dict(tia.items())) == tia.fingerprint()


def test_clean_sweep_finds_nothing(small_tree):
    scrubber = make_scrubber(small_tree)
    seen = scrubber.sweep()
    assert seen == small_tree.node_count()
    assert scrubber.repairs == 0
    assert scrubber.leaf_damage == 0
    assert scrubber.sweeps_completed == 1


def test_detects_and_repairs_internal_corruption_within_one_sweep(small_tree):
    scrubber = make_scrubber(small_tree)
    node, entry = first_internal_entry(small_tree)
    entry.tia.replace_all({0: 9999.0})
    assert validate_tree(small_tree).ok is False
    scrubber.sweep()
    assert scrubber.repairs >= 1
    assert validate_tree(small_tree).ok
    kinds = [event.kind for event in scrubber.events]
    assert "repaired-internal" in kinds


def test_repair_cascades_to_the_root(small_tree):
    # Corrupt EVERY internal TIA; one post-order sweep must fix them
    # all, because children are verified before their parents.
    scrubber = make_scrubber(small_tree)
    stack = [small_tree.root]
    corrupted = 0
    while stack:
        node = stack.pop()
        for entry in node.entries:
            if entry.child is not None:
                entry.tia.replace_all({0: 1.0})
                corrupted += 1
                stack.append(entry.child)
    if not corrupted:
        pytest.skip("tree too small to have internal entries")
    scrubber.sweep()
    assert scrubber.repairs == corrupted
    assert validate_tree(small_tree).ok


def test_leaf_damage_surfaces_as_health_event_not_repair(small_tree):
    scrubber = make_scrubber(small_tree)
    poi_id = next(iter(small_tree.poi_ids()))
    tia = small_tree.poi_tia(poi_id)
    tia.replace_all({0: 12345.0})
    scrubber.sweep()
    assert scrubber.leaf_damage == 1
    assert scrubber.repairs == 0  # leaf content is not re-derivable
    events = [e for e in scrubber.events if e.kind == "leaf-damage"]
    assert len(events) == 1
    assert repr(poi_id) in events[0].location
    # The same damage is reported once per sweep, not once per tick.
    scrubber.sweep()
    assert scrubber.leaf_damage == 2  # one more report, next sweep
    assert len([e for e in scrubber.events if e.kind == "leaf-damage"]) == 2


def test_mutation_observer_keeps_manifest_current(small_tree):
    scrubber = make_scrubber(small_tree)
    small_tree.add_mutation_observer(scrubber.observe_mutation)
    try:
        small_tree.insert_poi(POI(700, 1.0, 1.0), {2: 4})
        small_tree.digest_epoch(10, {700: 3})
        scrubber.sweep()
        assert scrubber.leaf_damage == 0  # fresh content is not damage
        small_tree.delete_poi(700)
        assert 700 not in scrubber._manifest
        scrubber.sweep()
        assert scrubber.leaf_damage == 0
    finally:
        small_tree.remove_mutation_observer(scrubber.observe_mutation)


def test_manifest_round_trip_and_lsn_staleness(tmp_path):
    tree = build_tree(pois=30)
    path = str(tmp_path / "scrub.json")
    scrubber = make_scrubber(tree, manifest_path=path)
    scrubber.persist_manifest()

    # Same LSN: the persisted manifest is trusted, including a poisoned
    # entry (which then reads as damage).
    reloaded = make_scrubber(tree, manifest_path=path)
    assert reloaded._manifest == scrubber._manifest

    # Advance the tree's applied LSN: the manifest is stale, so a new
    # scrubber rebaselines from the live tree instead of trusting it.
    tree.applied_lsn = (tree.applied_lsn or 0) + 5
    rebased = make_scrubber(tree, manifest_path=path)
    rebased.sweep()
    assert rebased.leaf_damage == 0


def test_budget_bounds_each_tick(small_tree):
    scrubber = make_scrubber(small_tree, budget=1)
    total_nodes = small_tree.node_count()
    assert scrubber.tick() == 1
    assert scrubber.sweeps_completed == 0 or total_nodes == 1
    seen = 1
    while scrubber.sweeps_completed == 0:
        seen += scrubber.tick()
    assert seen == total_nodes


@pytest.mark.timeout(120)
def test_ticks_do_not_block_concurrent_queries(small_tree):
    # Queries (read lock) proceed while a sweep is in progress; the
    # scrubber only needs the write lock for actual repairs.
    lock = ReadWriteLock()
    scrubber = Scrubber(small_tree, lock, budget=2)
    query = KNNTAQuery(point=(5.0, 5.0), interval=TimeInterval(2, 6), k=5)
    expected = small_tree.query(query)
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            with lock.read_locked():
                if small_tree.query(query) != expected:
                    failures.append("diverged")
                    return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    scrubber.sweep()
    scrubber.sweep()
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not failures
    assert scrubber.sweeps_completed == 2
