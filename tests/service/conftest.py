"""Fixtures for the query-service tests: small hand-built trees.

The service tests want cheap, deterministic trees they can mutate and
corrupt freely, so they build their own (memory-backend) instead of the
session-scoped paged fixtures.
"""

import random

import pytest

from repro.core.tar_tree import POI, TARTree
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def build_tree(pois=80, seed=7, world=20.0, epochs=10, node_size=None):
    """A fresh memory-backend TAR-tree with random check-in histories."""
    rng = random.Random(seed)
    kwargs = {} if node_size is None else {"node_size": node_size}
    tree = TARTree(
        world=Rect((0.0, 0.0), (world, world)),
        clock=EpochClock(0.0, 1.0),
        current_time=float(epochs),
        tia_backend="memory",
        **kwargs
    )
    for i in range(pois):
        history = {
            e: rng.randrange(1, 8) for e in range(epochs) if rng.random() < 0.6
        }
        tree.insert_poi(POI(i, rng.random() * world, rng.random() * world), history)
    return tree


@pytest.fixture
def small_tree():
    return build_tree()
