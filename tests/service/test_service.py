"""QueryService behaviour: correctness, batching, admission, lifecycle."""

import threading

import pytest

from repro.core.query import KNNTAQuery
from repro.core.tar_tree import POI
from repro.service import (
    QueryService,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.temporal.epochs import TimeInterval

from tests.service.conftest import build_tree


def make_query(x=5.0, y=5.0, lo=2, hi=6, k=5):
    return KNNTAQuery(point=(x, y), interval=TimeInterval(lo, hi), k=k)


@pytest.mark.timeout(120)
class TestQueryPath:
    def test_single_query_matches_direct_answer(self, small_tree):
        with QueryService(small_tree) as service:
            query = make_query()
            assert service.query(query) == small_tree.query(query)

    def test_many_same_interval_queries_all_match(self, small_tree):
        queries = [make_query(x=float(i % 7), y=float(i % 5)) for i in range(24)]
        expected = [small_tree.query(q) for q in queries]
        config = ServiceConfig(workers=2, batch_size=8, linger=0.01)
        with QueryService(small_tree, config=config) as service:
            results = [None] * len(queries)

            def run(index):
                results[index] = service.query(queries[index])

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert results == expected

    def test_mixed_intervals_are_not_coalesced_together(self, small_tree):
        # Two interval presets: every executed batch must be homogeneous,
        # and each answer must still be exact.
        presets = [(2, 6), (1, 9)]
        queries = [make_query(lo=lo, hi=hi) for lo, hi in presets for _ in range(6)]
        expected = [small_tree.query(q) for q in queries]
        config = ServiceConfig(workers=1, batch_size=16, linger=0.05)
        service = QueryService(small_tree, config=config, autostart=False)
        pending = [service.submit(q) for q in queries]
        service.start()
        results = [p.result(timeout=30) for p in pending]
        assert results == expected
        for p in pending:
            assert p.batch_size <= 6  # never a cross-interval batch
        service.close()

    def test_backlog_coalesces_into_one_batch(self, small_tree):
        config = ServiceConfig(workers=1, batch_size=64, linger=0.05)
        service = QueryService(small_tree, config=config, autostart=False)
        query = make_query()
        pending = [service.submit(query) for _ in range(10)]
        service.start()
        for p in pending:
            p.result(timeout=30)
        assert all(p.batch_size == 10 for p in pending)
        histogram = service.service_stats.batch_size_histogram
        assert histogram.get(10) == 1
        service.close()

    def test_batch_of_one_reports_size_one(self, small_tree):
        with QueryService(small_tree, config=ServiceConfig(linger=0.0)) as service:
            pending = service.submit(make_query())
            pending.result(timeout=30)
            assert pending.batch_size == 1
            assert pending.cost.rtree_nodes > 0

    def test_batched_cost_below_individual_cost(self, small_tree):
        # The collective batch shares node fetches, so its total access
        # count must undercut the same queries run one by one.
        queries = [make_query(x=float(i), y=float(i % 4)) for i in range(8)]
        snapshot = small_tree.stats.snapshot()
        for q in queries:
            small_tree.query(q)
        individual = small_tree.stats.diff(snapshot).rtree_nodes
        config = ServiceConfig(workers=1, batch_size=8, linger=0.05)
        service = QueryService(small_tree, config=config, autostart=False)
        pending = [service.submit(q) for q in queries]
        service.start()
        for p in pending:
            p.result(timeout=30)
        assert pending[0].batch_size == 8
        batched = service.service_stats.access_totals.rtree_nodes
        assert batched < individual
        service.close()

    def test_invalid_query_rejected_at_submit(self, small_tree):
        with QueryService(small_tree) as service:
            with pytest.raises(ValueError):
                service.submit(make_query(k=0))


@pytest.mark.timeout(120)
class TestAdmissionControl:
    def test_full_queue_rejects_with_retry_after(self, small_tree):
        config = ServiceConfig(queue_limit=4)
        service = QueryService(small_tree, config=config, autostart=False)
        for _ in range(4):
            service.submit(make_query())
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(make_query())
        assert excinfo.value.retry_after > 0
        assert excinfo.value.queue_depth == 4
        assert service.service_stats.rejected == 1
        service.close(drain=False)

    def test_expired_request_fails_with_timeout(self, small_tree):
        service = QueryService(small_tree, autostart=False)
        pending = service.submit(make_query(), timeout=0.0)
        service.start()
        with pytest.raises(RequestTimeoutError):
            pending.result(timeout=30)
        assert service.service_stats.timed_out == 1
        service.close()

    def test_submit_after_close_raises(self, small_tree):
        service = QueryService(small_tree)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(make_query())

    def test_close_without_drain_fails_queued_requests(self, small_tree):
        service = QueryService(small_tree, autostart=False)
        pending = service.submit(make_query())
        service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            pending.result(timeout=5)


@pytest.mark.timeout(120)
class TestMutations:
    def test_insert_delete_digest_without_ingest(self, small_tree):
        with QueryService(small_tree) as service:
            service.insert(POI(900, 3.0, 3.0), {2: 9})
            assert 900 in small_tree
            service.digest(10, {900: 4})
            assert small_tree.poi_tia(900).get(10) == 4
            assert service.delete(900)
            assert 900 not in small_tree

    def test_mutations_route_through_wal(self, tmp_path):
        from repro.reliability.recovery import CheckpointedIngest, recover

        tree = build_tree(pois=30)
        ingest = CheckpointedIngest(tree, str(tmp_path))
        with QueryService(tree, ingest=ingest) as service:
            service.insert(POI(500, 2.0, 2.0), {1: 3})
            service.digest(10, {500: 6})
            assert service.delete(0)
        ingest.close()
        report = recover(str(tmp_path))
        assert 500 in report.tree
        assert 0 not in report.tree
        assert report.tree.poi_tia(500).get(10) == 6
        # The recovered answers match the served tree's.
        query = make_query()
        assert report.tree.query(query) == tree.query(query)

    def test_ingest_tree_mismatch_rejected(self, small_tree, tmp_path):
        from repro.reliability.recovery import CheckpointedIngest

        other = build_tree(pois=10, seed=1)
        ingest = CheckpointedIngest(other, str(tmp_path))
        with pytest.raises(ValueError):
            QueryService(small_tree, ingest=ingest)
        ingest.close()


@pytest.mark.timeout(120)
class TestWorkerCrash:
    # The crash is the point: the worker re-raises after recording its
    # death, which pytest's thread-exception hook would otherwise warn on.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_pool_fails_pending_and_rejects_new_work(self, small_tree):
        # One worker; the first batch (first request) kills it.  The
        # second request uses a different interval so it stays queued —
        # a silently dead pool would leave its untimed waiter hanging
        # forever, which is exactly what WorkerCrashError prevents.
        config = ServiceConfig(workers=1, linger=0.0)
        service = QueryService(small_tree, config=config, autostart=False)
        service.submit(make_query())
        survivor = service.submit(make_query(lo=1, hi=9))

        def boom(batch):
            raise RuntimeError("worker exploded")

        service._execute = boom
        service.start()
        with pytest.raises(WorkerCrashError) as excinfo:
            survivor.result(timeout=30)
        assert "worker exploded" in str(excinfo.value)
        # Fail-fast from then on: submit() rejects without enqueueing.
        with pytest.raises(WorkerCrashError):
            service.submit(make_query())
        assert service.stats()["worker_deaths"] == 1
        service.close()

    def test_batch_failure_does_not_kill_the_worker(self, small_tree, monkeypatch):
        # A query that blows up inside execution fails only its own
        # riders; the worker survives to serve the next request.
        import repro.service.service as service_module

        real = service_module.knnta_search
        calls = {"count": 0}

        def flaky(tree, query):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("query blew up")
            return real(tree, query)

        monkeypatch.setattr(service_module, "knnta_search", flaky)
        config = ServiceConfig(workers=1, linger=0.0)
        with QueryService(small_tree, config=config) as service:
            with pytest.raises(RuntimeError, match="query blew up"):
                service.query(make_query())
            assert service.query(make_query()) == small_tree.query(make_query())
            snapshot = service.stats()
            assert snapshot["worker_deaths"] == 0
            assert snapshot["failed"] == 1


@pytest.mark.timeout(120)
class TestStatsSurface:
    def test_snapshot_shape(self, small_tree):
        with QueryService(small_tree) as service:
            service.query(make_query())
            snapshot = service.stats()
        assert snapshot["completed"] == 1
        assert snapshot["batches"] == 1
        assert snapshot["access_totals"]["rtree_nodes"] > 0
        assert snapshot["access_per_request"]["rtree_nodes"] > 0
        assert snapshot["latency"]["p50"] is not None
        assert snapshot["latency"]["p99"] >= snapshot["latency"]["p50"]
        assert "scrubber" in snapshot
        assert snapshot["pois"] == len(small_tree)
        import json

        json.dumps(snapshot)  # must be wire-serialisable

    def test_batch_histogram_uses_string_keys(self, small_tree):
        with QueryService(small_tree) as service:
            service.query(make_query())
            histogram = service.stats()["batch_size_histogram"]
        assert histogram == {"1": 1}
