"""The command-line interface end to end."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def run_cli_err(argv):
    """Like run_cli but also captures stderr (serve/shard-worker
    refusals print there so scripts can tell refusal from output)."""
    out = io.StringIO()
    err = io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data.npz"
    code, output = run_cli(
        ["generate", "--preset", "LA", "--scale", "0.01", "--seed", "3",
         "--out", str(path)]
    )
    assert code == 0
    assert "wrote" in output
    return path


@pytest.fixture(scope="module")
def tree_file(dataset_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tree.json"
    code, output = run_cli(
        ["build", str(dataset_file), "--strategy", "integral3d",
         "--out", str(path)]
    )
    assert code == 0
    assert "TARTree" in output
    return path


@pytest.fixture(scope="module")
def cluster_dir(dataset_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cluster"
    code, output = run_cli(
        ["shard", str(dataset_file), "--shards", "4", "--out", str(path)]
    )
    assert code == 0
    assert "4 shards" in output
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_query_needs_interval(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "t.json", "--x", "1", "--y", "2"])

    def test_query_interval_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "t.json", "--x", "1", "--y", "2",
                 "--last-days", "7", "--interval", "0", "7"]
            )


class TestGenerate:
    def test_reports_statistics(self, dataset_file):
        # The module-scoped fixture already asserts success; re-read it.
        from repro.storage.serialize import load_dataset

        data = load_dataset(dataset_file)
        assert data.num_pois == 455
        assert data.name == "LA"


class TestFit:
    def test_fit_runs(self, dataset_file):
        code, output = run_cli(["fit", str(dataset_file), "--bootstrap", "5"])
        assert code == 0
        assert "beta=" in output
        assert "xmin=" in output


class TestQuery:
    def test_query_prints_ranked_results(self, tree_file):
        code, output = run_cli(
            ["query", str(tree_file), "--x", "50", "--y", "50",
             "--last-days", "60", "--k", "3"]
        )
        assert code == 0
        assert output.count("#") == 3
        # The cost line renders every AccessStats.as_dict() counter.
        assert "node accesses" in output
        assert "internal" in output and "leaf" in output
        assert "TIA page reads" in output and "buffer hits" in output

    def test_query_with_explicit_interval(self, tree_file):
        code, output = run_cli(
            ["query", str(tree_file), "--x", "10", "--y", "90",
             "--interval", "0", "400", "--k", "2", "--alpha0", "0.7"]
        )
        assert code == 0
        assert "alpha0=0.7" in output

    def test_scan_cross_check_passes(self, tree_file):
        code, output = run_cli(
            ["query", str(tree_file), "--x", "30", "--y", "70",
             "--last-days", "120", "--k", "5", "--scan"]
        )
        assert code == 0
        assert "scan cross-check: OK" in output


class TestShard:
    def test_shard_reports_the_plan(self, cluster_dir):
        # The module fixture already built it; the manifest is on disk.
        from repro.cluster import is_cluster_directory

        assert is_cluster_directory(str(cluster_dir))
        code, output = run_cli(
            ["shard", str(cluster_dir / "missing.npz"), "--out",
             str(cluster_dir / "nope")]
        )
        assert code == 2
        assert "cannot read dataset snapshot" in output

    def test_shard_lines_describe_every_region(self, dataset_file, tmp_path):
        code, output = run_cli(
            ["shard", str(dataset_file), "--shards", "3", "--method", "grid",
             "--out", str(tmp_path / "c")]
        )
        assert code == 0
        assert "(grid plan)" in output
        assert output.count("shard ") == 3


class TestClusterQuery:
    def test_query_against_a_cluster_directory(self, cluster_dir):
        code, output = run_cli(
            ["query", str(cluster_dir), "--x", "50", "--y", "50",
             "--last-days", "60", "--k", "3"]
        )
        assert code == 0
        assert output.count("#") == 3
        assert "cluster:" in output
        assert "of 4 shard(s) visited" in output

    def test_query_explain_prints_shard_labeled_costs(self, cluster_dir):
        code, output = run_cli(
            ["query", str(cluster_dir), "--x", "50", "--y", "50",
             "--last-days", "60", "--k", "3", "--explain"]
        )
        assert code == 0
        assert "shards.visited = " in output
        assert "shards.0." in output or "shards.1." in output

    def test_cluster_matches_single_tree_answers(self, cluster_dir, tree_file):
        argv = ["--x", "30", "--y", "70", "--last-days", "120", "--k", "5"]
        code_c, cluster_output = run_cli(["query", str(cluster_dir)] + argv)
        code_t, tree_output = run_cli(["query", str(tree_file)] + argv)
        assert code_c == code_t == 0
        ranked = [
            line for line in cluster_output.splitlines() if line.strip().startswith("#")
        ]
        assert ranked == [
            line for line in tree_output.splitlines() if line.strip().startswith("#")
        ]

    def test_scan_cross_check_passes_on_a_cluster(self, cluster_dir):
        code, output = run_cli(
            ["query", str(cluster_dir), "--x", "10", "--y", "90",
             "--last-days", "200", "--k", "5", "--scan"]
        )
        assert code == 0
        assert "scan cross-check: OK" in output

    def test_corrupt_shard_snapshot_exits_two(self, dataset_file, tmp_path):
        from repro.reliability.faults import flip_bit

        code, _ = run_cli(
            ["shard", str(dataset_file), "--shards", "2",
             "--out", str(tmp_path / "c")]
        )
        assert code == 0
        flip_bit(str(tmp_path / "c" / "shard-0" / "tree.json"), bit_index=2000)
        code, output = run_cli(
            ["query", str(tmp_path / "c"), "--x", "50", "--y", "50",
             "--last-days", "60", "--k", "3"]
        )
        assert code == 2
        assert "cannot open cluster" in output

    def test_directory_without_manifest_exits_two(self, tmp_path):
        code, output = run_cli(
            ["query", str(tmp_path), "--x", "1", "--y", "1", "--last-days", "7"]
        )
        assert code == 2
        assert "no cluster manifest" in output


class TestWatch:
    @pytest.fixture()
    def watchable(self, small_dataset, tmp_path):
        # A tree over the leading 70% of the history, with the data set
        # alongside: `watch --dataset` replays the remaining tail.
        from repro import TARTree
        from repro.storage.serialize import save_dataset, save_tree

        tree = TARTree.build(small_dataset.snapshot(0.7))
        tree_path = tmp_path / "watch-tree.json"
        data_path = tmp_path / "watch-data.npz"
        save_tree(tree, str(tree_path))
        save_dataset(small_dataset, str(data_path))
        return tree_path, data_path

    def test_watch_without_dataset_prints_initial_ranking(self, watchable):
        tree_path, _ = watchable
        code, output = run_cli(
            ["watch", str(tree_path), "--x", "40", "--y", "40",
             "--window", "3", "--k", "3"]
        )
        assert code == 0
        assert "watching top-3 at (40, 40), window 3 epoch(s)" in output
        assert output.count("#") == 3
        assert "replayed" not in output

    def test_watch_replays_the_dataset_tail(self, watchable):
        tree_path, data_path = watchable
        code, output = run_cli(
            ["watch", str(tree_path), "--x", "40", "--y", "40",
             "--window", "3", "--k", "5", "--dataset", str(data_path)]
        )
        assert code == 0
        assert "seq 1:" in output
        assert "update(s) pushed" in output
        assert "evals.errors=0" in output

    def test_max_updates_caps_the_replay(self, watchable):
        tree_path, data_path = watchable
        code, output = run_cli(
            ["watch", str(tree_path), "--x", "40", "--y", "40",
             "--window", "3", "--dataset", str(data_path),
             "--max-updates", "2"]
        )
        assert code == 0
        assert "2 update(s) pushed" in output
        assert "seq 3:" not in output

    def test_watch_a_cluster_directory(self, cluster_dir):
        code, output = run_cli(
            ["watch", str(cluster_dir), "--x", "50", "--y", "50",
             "--window", "2", "--k", "3"]
        )
        assert code == 0
        assert "watching top-3" in output

    def test_watch_bad_directory_exits_two(self, tmp_path):
        code, output = run_cli(
            ["watch", str(tmp_path), "--x", "1", "--y", "1", "--window", "2"]
        )
        assert code == 2
        assert "no cluster manifest" in output


class TestMWA:
    def test_mwa_prints_bounds(self, tree_file):
        code, output = run_cli(
            ["mwa", str(tree_file), "--x", "50", "--y", "50",
             "--last-days", "120", "--k", "5"]
        )
        assert code == 0
        assert "alpha0" in output
        assert ("minimum adjustment" in output) or ("immutable" in output)

    def test_mwa_methods_agree(self, tree_file):
        argv = ["mwa", str(tree_file), "--x", "20", "--y", "40",
                "--last-days", "200", "--k", "5"]
        _, pruning = run_cli(argv + ["--method", "pruning"])
        _, enumerating = run_cli(argv + ["--method", "enumerating"])
        assert pruning == enumerating


class TestVerify:
    def test_clean_tree_exits_zero(self, tree_file):
        code, output = run_cli(["verify", str(tree_file)])
        assert code == 0
        assert "no violations" in output

    def test_clean_tree_with_dataset_exits_zero(self, tree_file, dataset_file):
        code, output = run_cli(
            ["verify", str(tree_file), "--dataset", str(dataset_file)]
        )
        assert code == 0
        assert "no violations" in output

    def test_mismatched_dataset_exits_one(self, tree_file, tmp_path):
        other = tmp_path / "other.npz"
        code, _ = run_cli(
            ["generate", "--preset", "LA", "--scale", "0.01", "--seed", "4",
             "--out", str(other)]
        )
        assert code == 0
        code, output = run_cli(
            ["verify", str(tree_file), "--dataset", str(other)]
        )
        assert code == 1
        assert "violation codes" in output

    def test_corrupt_tree_exits_two(self, tree_file, tmp_path):
        import json

        corrupt = tmp_path / "corrupt.json"
        payload = json.loads(tree_file.read_text())
        payload["sections"]["pois"][0][3][0][1] += 1
        corrupt.write_text(json.dumps(payload))
        code, output = run_cli(["verify", str(corrupt)])
        assert code == 2
        assert "corrupt tree snapshot" in output
        assert "'pois'" in output

    def test_missing_files_exit_two(self, tree_file, tmp_path):
        code, output = run_cli(["verify", str(tmp_path / "missing.json")])
        assert code == 2
        assert "cannot read tree snapshot" in output
        code, output = run_cli(
            ["verify", str(tree_file), "--dataset", str(tmp_path / "no.npz")]
        )
        assert code == 2
        assert "cannot read dataset snapshot" in output

    def test_corrupt_dataset_exits_two(self, tree_file, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"\x00" * 64)
        code, output = run_cli(
            ["verify", str(tree_file), "--dataset", str(garbage)]
        )
        assert code == 2
        assert "corrupt dataset snapshot" in output


class TestRecover:
    def make_state(self, tree_file, directory):
        """A crashed ingest state: snapshot + un-checkpointed WAL."""
        from repro.core.tar_tree import POI
        from repro.reliability.recovery import CheckpointedIngest
        from repro.storage.serialize import load_tree

        tree = load_tree(str(tree_file))
        epoch = tree.num_epochs
        poi_ids = sorted(tree.poi_ids())[:3]
        with CheckpointedIngest(tree, str(directory)) as ingest:
            ingest.insert(POI("cli-poi", 50.0, 50.0), {epoch - 1: 2})
            ingest.digest(epoch, {poi_ids[0]: 2, "cli-poi": 1})
            ingest.delete(poi_ids[1])
        return tree

    def test_recover_replays_and_reports(self, tree_file, tmp_path):
        self.make_state(tree_file, tmp_path)
        code, output = run_cli(["recover", str(tmp_path)])
        assert code == 0
        assert "1 insert(s)" in output
        assert "1 delete(s)" in output
        assert "1 epoch batch(es) replayed" in output

    def test_recover_with_checkpoint_resets_the_wal(self, tree_file, tmp_path):
        from repro.reliability.wal import RECORD_CHECKPOINT, read_wal

        self.make_state(tree_file, tmp_path)
        code, output = run_cli(["recover", str(tmp_path), "--checkpoint"])
        assert code == 0
        assert "checkpointed to" in output
        records, dropped = read_wal(str(tmp_path / "tree.wal"))
        assert dropped == 0
        assert [record.type for record in records] == [RECORD_CHECKPOINT]
        # a second recovery now replays nothing
        code, output = run_cli(["recover", str(tmp_path)])
        assert code == 0
        assert "0 insert(s)" in output

    def test_recover_verify_runs_validators(self, tree_file, tmp_path):
        self.make_state(tree_file, tmp_path)
        code, output = run_cli(["recover", str(tmp_path), "--verify"])
        assert code == 0
        assert "no violations" in output

    def test_missing_state_exits_two(self, tmp_path):
        code, output = run_cli(["recover", str(tmp_path / "nope")])
        assert code == 2
        assert "cannot read state" in output

    def test_corrupt_wal_exits_two(self, tree_file, tmp_path):
        self.make_state(tree_file, tmp_path)
        wal = tmp_path / "tree.wal"
        lines = wal.read_text().splitlines(keepends=True)
        lines[0] = "deadbeef" + lines[0][8:]
        wal.write_text("".join(lines))
        code, output = run_cli(["recover", str(tmp_path)])
        assert code == 2
        assert "corrupt state" in output
        assert "'wal'" in output


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "t.json"])
        assert args.port == 0
        assert args.workers == 2
        assert args.batch_size == 16
        assert args.queue_limit == 256
        assert args.state_dir is None

    def test_missing_tree_exits_two(self, tmp_path):
        code, output, error = run_cli_err(
            ["serve", str(tmp_path / "missing.json")]
        )
        assert code == 2
        assert output == ""
        assert "cannot read state" in error

    @pytest.mark.timeout(120)
    def test_serves_queries_over_tcp(self, tree_file, tmp_path):
        import json
        import re
        import socket
        import threading
        import time

        state_dir = tmp_path / "state"
        out = io.StringIO()
        result = {}

        def serve():
            result["code"] = main(
                ["serve", str(tree_file), "--port", "0",
                 "--state-dir", str(state_dir), "--scrub-interval-ms", "0"],
                out=out,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        # Poll the captured output for the bound port.
        deadline = time.monotonic() + 30
        match = None
        while time.monotonic() < deadline and not match:
            match = re.search(r"serving on ([\d.]+):(\d+)", out.getvalue())
            time.sleep(0.02)
        assert match, out.getvalue()
        address = (match.group(1), int(match.group(2)))

        sock = socket.create_connection(address, timeout=30)
        handle = sock.makefile("rwb")

        def rpc(payload):
            handle.write((json.dumps(payload) + "\n").encode("utf-8"))
            handle.flush()
            return json.loads(handle.readline())

        assert rpc({"op": "ping"})["pong"]
        response = rpc(
            {"op": "query", "point": [50, 50], "interval": [0, 200], "k": 3}
        )
        assert response["ok"]
        assert len(response["results"]) == 3
        response = rpc(
            {"op": "insert", "poi_id": "tcp-poi", "point": [50.0, 50.0],
             "aggregates": [[1, 4]]}
        )
        assert response["ok"]
        assert rpc({"op": "shutdown"})["bye"]
        sock.close()
        thread.join(timeout=30)
        assert result["code"] == 0
        assert "shut down" in out.getvalue()
        # The WAL-backed state dir holds the mutation durably.
        from repro.reliability.recovery import recover

        assert "tcp-poi" in recover(str(state_dir)).tree

    def test_refuses_wal_without_checkpoint(self, tree_file, tmp_path):
        # Regression: a state dir holding a WAL but no snapshot used to
        # start an empty serving session, silently orphaning the durable
        # mutations.  It must refuse with an actionable message instead.
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        (state_dir / "tree.wal").write_text("")
        code, output, error = run_cli_err(
            ["serve", str(tree_file), "--state-dir", str(state_dir)]
        )
        assert code == 2
        assert output == ""
        assert "refusing to start" in error
        assert "repro recover" in error

    def test_refuses_legacy_digestlog_without_checkpoint(
        self, tree_file, tmp_path
    ):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        (state_dir / "tree.digestlog").write_text("")
        code, _, error = run_cli_err(
            ["serve", str(tree_file), "--state-dir", str(state_dir)]
        )
        assert code == 2
        assert "tree.digestlog" in error

    def test_cluster_and_state_dir_conflict(self, cluster_dir, tmp_path):
        code, _, error = run_cli_err(
            ["serve", str(cluster_dir), "--cluster",
             "--state-dir", str(tmp_path / "state")]
        )
        assert code == 2
        assert "--state-dir does not apply" in error

    def test_cluster_on_a_non_cluster_directory_exits_two(self, tmp_path):
        code, _, error = run_cli_err(["serve", str(tmp_path), "--cluster"])
        assert code == 2
        assert "cannot open cluster" in error

    @pytest.mark.timeout(120)
    def test_serves_cluster_queries_over_tcp(self, cluster_dir, tmp_path):
        import json
        import re
        import shutil
        import socket
        import threading
        import time

        # Serving checkpoints on shutdown; work on a private copy.
        directory = tmp_path / "cluster"
        shutil.copytree(cluster_dir, directory)
        out = io.StringIO()
        result = {}

        def serve():
            result["code"] = main(
                ["serve", str(directory), "--cluster",
                 "--port", "0", "--scrub-interval-ms", "0"],
                out=out,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        match = None
        while time.monotonic() < deadline and not match:
            match = re.search(r"serving on ([\d.]+):(\d+)", out.getvalue())
            time.sleep(0.02)
        assert match, out.getvalue()
        assert "shards recovered" in out.getvalue()
        address = (match.group(1), int(match.group(2)))

        sock = socket.create_connection(address, timeout=30)
        handle = sock.makefile("rwb")

        def rpc(payload):
            handle.write((json.dumps(payload) + "\n").encode("utf-8"))
            handle.flush()
            return json.loads(handle.readline())

        response = rpc(
            {"op": "query", "point": [50, 50], "interval": [0, 200], "k": 3}
        )
        assert response["ok"]
        assert len(response["results"]) == 3
        response = rpc(
            {"op": "insert", "poi_id": "tcp-cluster-poi",
             "point": [50.0, 50.0], "aggregates": [[1, 4]]}
        )
        assert response["ok"]
        stats = rpc({"op": "stats"})
        assert stats["stats"]["cluster"]["shards"] == 4
        assert rpc({"op": "shutdown"})["bye"]
        sock.close()
        thread.join(timeout=30)
        assert result["code"] == 0
        # Shutdown checkpointed the cluster: the mutation is durable.
        from repro.cluster import open_cluster

        reopened = open_cluster(str(directory))
        try:
            assert "tcp-cluster-poi" in reopened
        finally:
            reopened.close()


class TestShardWorkers:
    """The out-of-process serving surface: ``serve --shard-workers``
    plus the ``shard-worker`` per-shard entry point."""

    def test_parser_accepts_shard_workers(self):
        args = build_parser().parse_args(
            ["serve", "c", "--cluster", "--shard-workers"]
        )
        assert args.shard_workers is True
        args = build_parser().parse_args(["serve", "c", "--shard-workers"])
        assert args.shard_workers is True  # implies --cluster downstream

    def test_shard_worker_parser_defaults(self):
        args = build_parser().parse_args(["shard-worker", "--dir", "d"])
        assert args.directory == "d"
        assert args.port == 0
        assert args.name == "tree"
        assert args.announce is None

    def test_shard_worker_missing_directory_exits_two(self, tmp_path):
        code, output, error = run_cli_err(
            ["shard-worker", "--dir", str(tmp_path / "nope")]
        )
        assert code == 2
        assert output == ""
        assert "no shard state directory" in error

    def test_shard_worker_non_shard_directory_exits_two(self, tmp_path):
        code, _, error = run_cli_err(["shard-worker", "--dir", str(tmp_path)])
        assert code == 2
        assert "no tree.json checkpoint" in error

    def test_manifest_behind_committed_reshard_exits_two(
        self, cluster_dir, tmp_path
    ):
        # A successor directory holding *committed* reshard metadata at
        # a plan epoch newer than the manifest means the manifest was
        # rolled back across a live split; serving it would resurrect
        # the retired source shard, so startup refuses on stderr.
        import shutil

        from repro.cluster.state import write_shard_meta

        directory = tmp_path / "cluster"
        shutil.copytree(cluster_dir, directory)
        orphan = directory / "shard-9"
        orphan.mkdir()
        write_shard_meta(str(orphan), plan_epoch=1, committed=True)
        code, output, error = run_cli_err(
            ["serve", str(directory), "--cluster", "--shard-workers"]
        )
        assert code == 2
        assert output == ""
        assert "cannot start shard workers" in error
        assert "rolled back" in error
        # The distinct messages keep the two refusals tellable apart.
        assert "refusing to start over durable mutations" not in error

    @pytest.mark.timeout(300)
    def test_serves_worker_cluster_queries_over_tcp(
        self, cluster_dir, tmp_path
    ):
        import json
        import re
        import shutil
        import socket
        import threading
        import time

        directory = tmp_path / "cluster"
        shutil.copytree(cluster_dir, directory)
        out = io.StringIO()
        result = {}

        def serve():
            result["code"] = main(
                ["serve", str(directory), "--cluster", "--shard-workers",
                 "--port", "0", "--scrub-interval-ms", "0"],
                out=out,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 120
        match = None
        while time.monotonic() < deadline and not match:
            match = re.search(r"serving on ([\d.]+):(\d+)", out.getvalue())
            time.sleep(0.02)
        assert match, out.getvalue()
        banner = out.getvalue()
        assert "4 shard worker process(es)" in banner
        assert banner.count("pid") == 4
        address = (match.group(1), int(match.group(2)))

        sock = socket.create_connection(address, timeout=30)
        handle = sock.makefile("rwb")

        def rpc(payload):
            handle.write((json.dumps(payload) + "\n").encode("utf-8"))
            handle.flush()
            return json.loads(handle.readline())

        response = rpc(
            {"op": "query", "point": [50, 50], "interval": [0, 200], "k": 3}
        )
        assert response["ok"]
        assert len(response["results"]) == 3
        response = rpc(
            {"op": "insert", "poi_id": "worker-tcp-poi",
             "point": [50.0, 50.0], "aggregates": [[1, 4]]}
        )
        assert response["ok"]
        health = rpc({"op": "health"})["health"]
        assert len(health["shards"]) == 4
        assert all(entry["alive"] for entry in health["shards"])
        assert rpc({"op": "shutdown"})["bye"]
        sock.close()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert result["code"] == 0
        # Shutdown checkpointed through the workers: the insert is
        # durable in the owning shard's WAL-backed state.
        from repro.cluster import open_cluster

        reopened = open_cluster(str(directory))
        try:
            assert "worker-tcp-poi" in reopened
        finally:
            reopened.close()
