"""End-to-end integration: the full life cycle of one deployment.

One scenario threaded through every public surface: generate a data set,
persist and reload it, bulk-build an index, serve queries (validated
against the scan ground truth), stream new epochs, explore weights with
the MWA, serve a collective burst, refresh placement, persist the tree
and reload it — asserting consistency at every step.
"""

import random

import pytest

from repro import POI, TARTree, TimeInterval, datasets
from repro.core.collective import CollectiveProcessor, process_individually
from repro.core.knnta import knnta_search
from repro.core.mwa import minimum_weight_adjustment
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.datasets.workload import generate_queries
from repro.storage.serialize import (
    load_dataset,
    load_tree,
    save_dataset,
    save_tree,
)


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    root = tmp_path_factory.mktemp("lifecycle")
    data = datasets.make("GS", scale=0.05, seed=99)
    dataset_path = root / "gs.npz"
    save_dataset(data, dataset_path)
    data = load_dataset(dataset_path)

    # Index the first 70% of history; the rest arrives as a stream.
    tree = TARTree.build(data.snapshot(0.7), until_time=data.tc, bulk=True)
    return root, data, tree


def scores(results):
    return [round(r.score, 9) for r in results]


def test_lifecycle(scenario):
    root, data, tree = scenario
    tree.check_invariants()
    assert len(tree) == len(data.snapshot(0.7).effective_poi_ids())

    # --- serve queries; the scan is the ground truth ------------------
    workload = generate_queries(data.snapshot(0.7), n_queries=15, seed=1)
    for query in workload:
        assert scores(knnta_search(tree, query)) == scores(
            sequential_scan(tree, query)
        )

    # --- stream the remaining epochs ----------------------------------
    clock = tree.clock
    full_counts = data.epoch_counts(clock, list(tree.poi_ids()))
    streamed = 0
    pending = {}
    for poi_id, epochs in full_counts.items():
        for epoch, count in epochs.items():
            delta = count - tree.poi_tia(poi_id).get(epoch)
            if delta > 0:
                pending.setdefault(epoch, {})[poi_id] = delta
    for epoch in sorted(pending):
        tree.digest_epoch(epoch, pending[epoch])
        streamed += sum(pending[epoch].values())
    assert streamed > 0
    tree.check_invariants()
    for poi_id, epochs in full_counts.items():
        assert dict(tree.poi_tia(poi_id).items()) == epochs

    # --- queries after the stream still match the ground truth --------
    late_queries = generate_queries(data, n_queries=15, seed=2)
    for query in late_queries:
        assert scores(knnta_search(tree, query)) == scores(
            sequential_scan(tree, query)
        )

    # --- weight exploration -------------------------------------------
    query = late_queries[0]
    mwa = minimum_weight_adjustment(tree, query)
    if mwa.gamma_upper is not None:
        baseline = {r.poi_id for r in knnta_search(tree, query)}
        shifted = query._replace(alpha0=min(0.999, mwa.gamma_upper + 1e-5))
        changed = {r.poi_id for r in knnta_search(tree, shifted)}
        assert changed != baseline

    # --- a collective burst matches individual processing -------------
    burst = list(generate_queries(data, n_queries=40, seed=3))
    collective = CollectiveProcessor(tree).run(burst)
    individual = process_individually(tree, burst)
    for a, b in zip(collective, individual):
        assert scores(a) == scores(b)

    # --- refresh drifted placement; content is untouched --------------
    before = {pid: dict(tree.poi_tia(pid).items()) for pid in tree.poi_ids()}
    tree.refresh_aggregate_dimension()
    tree.check_invariants()
    assert {
        pid: dict(tree.poi_tia(pid).items()) for pid in tree.poi_ids()
    } == before

    # --- persist and reload; answers are identical --------------------
    tree_path = root / "tree.json"
    save_tree(tree, tree_path)
    reloaded = load_tree(tree_path)
    reloaded.check_invariants()
    for query in late_queries[:5]:
        assert scores(knnta_search(reloaded, query)) == scores(
            knnta_search(tree, query)
        )


def test_lifecycle_with_late_pois(scenario):
    """POIs crossing the effective threshold mid-stream join the index."""
    _, data, tree = scenario
    rng = random.Random(4)
    newcomers = []
    for i in range(10):
        poi = POI("new-%d" % i, rng.random() * 100, rng.random() * 100)
        history = {e: rng.randrange(1, 9) for e in range(5)}
        tree.insert_poi(poi, history)
        newcomers.append(poi)
    tree.check_invariants()
    query = KNNTAQuery(
        (newcomers[0].x, newcomers[0].y), TimeInterval(0, 35), k=5, alpha0=0.9
    )
    results = knnta_search(tree, query)
    assert scores(results) == scores(sequential_scan(tree, query))
    for poi in newcomers:
        assert tree.delete_poi(poi.poi_id)
    tree.check_invariants()
