"""Geometry primitives: rectangles, distances, unions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import Rect, manhattan_distance, point_distance


def rect_strategy(dims=2, low=-100.0, high=100.0):
    coord = st.floats(low, high, allow_nan=False, allow_infinity=False)
    return st.lists(
        st.tuples(coord, coord).map(lambda pair: (min(pair), max(pair))),
        min_size=dims,
        max_size=dims,
    ).map(lambda sides: Rect([s[0] for s in sides], [s[1] for s in sides]))


def point_strategy(dims=2, low=-100.0, high=100.0):
    coord = st.floats(low, high, allow_nan=False, allow_infinity=False)
    return st.tuples(*([coord] * dims))


class TestConstruction:
    def test_valid(self):
        rect = Rect((0, 1), (2, 3))
        assert rect.lows == (0.0, 1.0)
        assert rect.highs == (2.0, 3.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect((2, 0), (1, 1))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1, 1, 1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_from_point_is_degenerate(self):
        rect = Rect.from_point((3, 4))
        assert rect.area() == 0
        assert rect.contains_point((3, 4))


class TestMeasures:
    def test_area(self):
        assert Rect((0, 0), (2, 3)).area() == 6

    def test_area_3d(self):
        assert Rect((0, 0, 0), (2, 3, 4)).area() == 24

    def test_margin(self):
        assert Rect((0, 0), (2, 3)).margin() == 5

    def test_diagonal(self):
        assert Rect((0, 0), (3, 4)).diagonal() == 5

    def test_center(self):
        assert Rect((0, 0), (2, 4)).center == (1, 2)

    def test_extent(self):
        rect = Rect((1, 2), (4, 10))
        assert rect.extent(0) == 3
        assert rect.extent(1) == 8


class TestSetOperations:
    def test_union(self):
        union = Rect((0, 0), (1, 1)).union(Rect((2, -1), (3, 0.5)))
        assert union == Rect((0, -1), (3, 1))

    def test_union_all(self):
        rects = [Rect.from_point((i, -i)) for i in range(5)]
        assert Rect.union_all(rects) == Rect((0, -4), (4, 0))

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_all([])

    def test_enlargement(self):
        base = Rect((0, 0), (1, 1))
        assert base.enlargement(Rect((0, 0), (1, 2))) == pytest.approx(1.0)
        assert base.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_intersects(self):
        a = Rect((0, 0), (2, 2))
        assert a.intersects(Rect((1, 1), (3, 3)))
        assert a.intersects(Rect((2, 2), (3, 3)))  # touching counts
        assert not a.intersects(Rect((3, 3), (4, 4)))

    def test_overlap_area(self):
        a = Rect((0, 0), (2, 2))
        assert a.overlap_area(Rect((1, 1), (3, 3))) == 1.0
        assert a.overlap_area(Rect((2, 2), (3, 3))) == 0.0
        assert a.overlap_area(Rect((5, 5), (6, 6))) == 0.0

    def test_contains(self):
        outer = Rect((0, 0), (4, 4))
        assert outer.contains_rect(Rect((1, 1), (2, 2)))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect((1, 1), (5, 2)))
        assert outer.contains_point((0, 4))
        assert not outer.contains_point((-0.1, 2))


class TestMinDist:
    def test_inside_is_zero(self):
        assert Rect((0, 0), (2, 2)).min_dist((1, 1)) == 0.0

    def test_axis_aligned(self):
        assert Rect((0, 0), (2, 2)).min_dist((5, 1)) == 3.0

    def test_corner(self):
        assert Rect((0, 0), (2, 2)).min_dist((5, 6)) == 5.0

    def test_point_distance(self):
        assert point_distance((0, 0), (3, 4)) == 5.0

    def test_manhattan_distance(self):
        assert manhattan_distance((1, 2, 3), (3, 0, 3)) == 4


@given(rect_strategy(), rect_strategy())
def test_property_union_contains_both(a, b):
    union = a.union(b)
    assert union.contains_rect(a)
    assert union.contains_rect(b)


@given(rect_strategy(), rect_strategy())
def test_property_overlap_symmetric(a, b):
    assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))


@given(rect_strategy(), point_strategy())
def test_property_min_dist_lower_bounds_center_distance(rect, point):
    center_dist = point_distance(rect.center, point)
    assert rect.min_dist(point) <= center_dist + 1e-9


@given(rect_strategy(), rect_strategy())
def test_property_enlargement_non_negative(a, b):
    assert a.enlargement(b) >= -1e-6


@given(rect_strategy(3), rect_strategy(3))
def test_property_3d_union_area_at_least_parts(a, b):
    union = a.union(b)
    assert union.area() >= max(a.area(), b.area()) - 1e-9
