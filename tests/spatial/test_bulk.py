"""STR bulk loading: the partitioner and the TAR-tree integration."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TARTree, TimeInterval, datasets
from repro.core.knnta import knnta_search
from repro.core.query import KNNTAQuery
from repro.core.scan import sequential_scan
from repro.spatial.bulk import str_partition


def random_points(n, dims, seed=0):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(dims)) for _ in range(n)]


class TestPartitioner:
    def test_empty(self):
        assert str_partition([], capacity=8) == []

    def test_single_group(self):
        points = random_points(5, 2)
        groups = str_partition(points, capacity=8)
        assert groups == [[i for i in sorted(groups[0])]] or len(groups) == 1

    def test_partition_is_exact(self):
        points = random_points(500, 2, seed=1)
        groups = str_partition(points, capacity=16, min_fill=7)
        flattened = sorted(i for group in groups for i in group)
        assert flattened == list(range(500))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_fill_bounds(self, dims):
        points = random_points(777, dims, seed=2)
        groups = str_partition(points, capacity=20, min_fill=8)
        for group in groups:
            assert 8 <= len(group) <= 20

    def test_tiles_are_mostly_spatially_coherent(self):
        # Two distant clusters: STR's slab cuts need not align with the
        # gap, but the vast majority of tiles must be single-cluster.
        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for _ in range(100)]
        points += [(100 + rng.random(), 100 + rng.random()) for _ in range(100)]
        groups = str_partition(points, capacity=10, min_fill=4)
        mixed = sum(
            1 for group in groups if len({points[i][0] < 50 for i in group}) > 1
        )
        assert mixed <= len(groups) * 0.3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            str_partition([(0.0, 0.0)], capacity=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
        max_size=300,
    ),
    st.integers(5, 40),
)
def test_property_partition_covers_all_points(points, capacity):
    min_fill = max(1, int(capacity * 0.4))
    groups = str_partition(points, capacity, min_fill=min_fill)
    flattened = sorted(i for group in groups for i in group)
    assert flattened == list(range(len(points)))
    for group in groups:
        assert len(group) <= capacity
    if len(points) >= 2 * min_fill:
        for group in groups:
            assert len(group) >= min_fill


class TestBulkBuiltTree:
    @pytest.fixture(scope="class")
    def dataset(self):
        return datasets.make("GS", scale=0.05, seed=13)

    @pytest.mark.parametrize("strategy", ["integral3d", "spatial"])
    def test_bulk_tree_is_structurally_valid(self, dataset, strategy):
        tree = TARTree.build(dataset, strategy=strategy, bulk=True)
        tree.check_invariants()
        assert len(tree) == len(dataset.effective_poi_ids())

    def test_bulk_answers_match_incremental(self, dataset):
        bulk = TARTree.build(dataset, bulk=True)
        incremental = TARTree.build(dataset)
        for seed in range(5):
            rng = random.Random(seed)
            query = KNNTAQuery(
                (rng.random() * 100, rng.random() * 100),
                TimeInterval(0, dataset.span_days),
                k=10,
            )
            a = [round(r.score, 9) for r in knnta_search(bulk, query)]
            b = [round(r.score, 9) for r in knnta_search(incremental, query)]
            assert a == b

    def test_bulk_tree_supports_further_maintenance(self, dataset):
        tree = TARTree.build(dataset, bulk=True)
        from repro import POI

        tree.insert_poi(POI("late", 50.0, 50.0), {0: 3})
        tree.digest_epoch(1, {"late": 7})
        victim = next(iter(tree.poi_ids()))
        assert tree.delete_poi(victim)
        tree.check_invariants()
        query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 30), k=5)
        bfs = [round(r.score, 9) for r in knnta_search(tree, query)]
        scan = [round(r.score, 9) for r in sequential_scan(tree, query)]
        assert bfs == scan

    def test_bulk_rejects_aggregate_strategy(self, dataset):
        with pytest.raises(ValueError):
            TARTree.build(dataset, strategy="aggregate", bulk=True)

    def test_bulk_rejects_non_empty_tree(self, dataset):
        tree = TARTree.build(dataset, bulk=True)
        with pytest.raises(ValueError):
            tree.bulk_load([])
        # Empty input on an empty tree is fine.
        fresh = TARTree.build(
            dataset.snapshot(0.01), bulk=True
        )  # likely zero effective POIs
        fresh.check_invariants()

    def test_bulk_is_faster_on_large_input(self):
        import time

        data = datasets.make("GS", scale=0.3, seed=14)
        start = time.perf_counter()
        TARTree.build(data, bulk=True, tia_backend="memory")
        bulk_seconds = time.perf_counter() - start
        start = time.perf_counter()
        TARTree.build(data, tia_backend="memory")
        incremental_seconds = time.perf_counter() - start
        assert bulk_seconds < incremental_seconds