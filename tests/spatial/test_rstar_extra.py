"""Additional R*-tree coverage: 3-D trees, access accounting, bulk edges."""

import random

import pytest

from repro.spatial.bulk import _balanced_group_sizes
from repro.spatial.geometry import Rect, point_distance
from repro.spatial.rstar import RStarTree
from repro.storage.stats import AccessStats


def random_points_3d(n, seed=0):
    rng = random.Random(seed)
    return [(rng.random(), rng.random(), rng.random()) for _ in range(n)]


class TestThreeDimensionalTree:
    def test_build_and_invariants(self):
        tree = RStarTree(dims=3, capacity=8)
        points = random_points_3d(300, seed=1)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        tree.check_invariants()
        assert tree.height >= 3

    def test_window_search_3d(self):
        tree = RStarTree(dims=3, capacity=8)
        points = random_points_3d(300, seed=2)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        window = Rect((0.2, 0.2, 0.2), (0.7, 0.6, 0.9))
        expected = {i for i, p in enumerate(points) if window.contains_point(p)}
        assert set(tree.search(window)) == expected

    def test_knn_3d_matches_brute_force(self):
        tree = RStarTree(dims=3, capacity=8)
        points = random_points_3d(250, seed=3)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        query = (0.4, 0.4, 0.4)
        got = [d for d, _ in tree.nearest(query, k=12)]
        brute = sorted(point_distance(p, query) for p in points)[:12]
        assert got == pytest.approx(brute)

    def test_delete_3d(self):
        tree = RStarTree(dims=3, capacity=8)
        points = random_points_3d(150, seed=4)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        for i in range(0, 150, 2):
            assert tree.delete(Rect.from_point(points[i]), i)
        tree.check_invariants()
        assert len(tree) == 75


class TestAccessAccounting:
    def test_window_search_counts_nodes(self):
        stats = AccessStats()
        tree = RStarTree(dims=2, capacity=8, stats=stats)
        rng = random.Random(5)
        for i in range(300):
            tree.insert(Rect.from_point((rng.random(), rng.random())), i)
        stats.reset()
        tree.search(Rect((0.0, 0.0), (0.05, 0.05)))
        small_window = stats.rtree_nodes
        stats.reset()
        tree.search(Rect((0.0, 0.0), (1.0, 1.0)))
        full_window = stats.rtree_nodes
        assert 0 < small_window < full_window == tree.node_count()

    def test_search_contained_counts_nodes(self):
        stats = AccessStats()
        tree = RStarTree(dims=2, capacity=8, stats=stats)
        rng = random.Random(6)
        for i in range(100):
            tree.insert(Rect.from_point((rng.random(), rng.random())), i)
        stats.reset()
        tree.search_contained(Rect((0.25, 0.25), (0.75, 0.75)))
        assert stats.rtree_nodes > 0


class TestBalancedGroupSizes:
    def test_single_group_when_it_fits(self):
        assert _balanced_group_sizes(7, capacity=10, min_fill=4, fill_ratio=0.9) == [7]

    def test_groups_within_bounds(self):
        sizes = _balanced_group_sizes(100, capacity=10, min_fill=4, fill_ratio=0.9)
        assert sum(sizes) == 100
        assert all(4 <= size <= 10 for size in sizes)

    def test_capacity_beats_extreme_min_fill(self):
        # min_fill == capacity with a non-multiple total: capacity wins.
        sizes = _balanced_group_sizes(95, capacity=10, min_fill=10, fill_ratio=1.0)
        assert sum(sizes) == 95
        assert all(size <= 10 for size in sizes)

    def test_balance(self):
        sizes = _balanced_group_sizes(103, capacity=20, min_fill=8, fill_ratio=0.8)
        assert max(sizes) - min(sizes) <= 1
