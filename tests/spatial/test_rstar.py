"""R*-tree: grouping algorithms and the full standalone tree."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Rect, point_distance
from repro.spatial.rstar import (
    RStarTree,
    reinsert_indices,
    rstar_choose_subtree,
    rstar_split_groups,
)
from repro.storage.stats import AccessStats


def random_points(n, seed=0, extent=100.0):
    rng = random.Random(seed)
    return [(rng.random() * extent, rng.random() * extent) for _ in range(n)]


class TestChooseSubtree:
    def test_prefers_containing_rect(self):
        rects = [Rect((0, 0), (10, 10)), Rect((20, 20), (30, 30))]
        new = Rect((2, 2), (3, 3))
        assert rstar_choose_subtree(rects, new, children_are_leaves=False) == 0
        assert rstar_choose_subtree(rects, new, children_are_leaves=True) == 0

    def test_minimises_area_enlargement(self):
        rects = [Rect((0, 0), (10, 10)), Rect((10, 0), (12, 2))]
        new = Rect((11, 3), (11.5, 3.5))
        assert rstar_choose_subtree(rects, new, children_are_leaves=False) == 1

    def test_leaf_level_minimises_overlap_enlargement(self):
        # Putting the point into the big rect would newly overlap the
        # small one; the small rect can absorb it overlap-free.
        rects = [Rect((0, 0), (10, 10)), Rect((10.5, 4), (12, 6))]
        new = Rect.from_point((10.4, 5))
        assert rstar_choose_subtree(rects, new, children_are_leaves=True) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rstar_choose_subtree([], Rect((0, 0), (1, 1)), False)


class TestSplit:
    def test_splits_two_clusters_cleanly(self):
        cluster_a = [Rect.from_point((i * 0.1, (i % 3) * 0.2)) for i in range(5)]
        cluster_b = [
            Rect.from_point((100 + i * 0.1, (i % 3) * 0.2)) for i in range(5)
        ]
        group_1, group_2 = rstar_split_groups(cluster_a + cluster_b, min_fill=4)
        groups = {frozenset(group_1), frozenset(group_2)}
        assert groups == {frozenset(range(5)), frozenset(range(5, 10))}

    def test_min_fill_respected(self):
        rects = [Rect.from_point((i, i)) for i in range(10)]
        group_1, group_2 = rstar_split_groups(rects, min_fill=4)
        assert len(group_1) >= 4 and len(group_2) >= 4
        assert sorted(group_1 + group_2) == list(range(10))

    def test_invalid_min_fill(self):
        rects = [Rect.from_point((i, i)) for i in range(4)]
        with pytest.raises(ValueError):
            rstar_split_groups(rects, min_fill=3)

    def test_single_entry_rejected(self):
        with pytest.raises(ValueError):
            rstar_split_groups([Rect((0, 0), (1, 1))], min_fill=1)

    def test_3d_split_partitions_everything(self):
        rng = random.Random(5)
        rects = [
            Rect.from_point((rng.random(), rng.random(), rng.random()))
            for _ in range(20)
        ]
        group_1, group_2 = rstar_split_groups(rects, min_fill=8)
        assert sorted(group_1 + group_2) == list(range(20))


class TestReinsert:
    def test_picks_farthest_from_center(self):
        # Five points near the cluster center plus one remote outlier: the
        # outlier's center distance dominates, so it is reinserted first.
        # No single cluster point sits at the union's low corner (5, 5),
        # so the outlier is strictly farthest from the node center.
        rects = [
            Rect.from_point(p)
            for p in [(5, 9), (9, 5), (7, 7), (8, 6), (6, 8)]
        ] + [Rect.from_point((100, 100))]
        victims = reinsert_indices(rects, 1)
        assert victims == (5,)

    def test_zero_count(self):
        assert reinsert_indices([Rect((0, 0), (1, 1))], 0) == ()

    def test_count_respected(self):
        rects = [Rect.from_point((i, 0)) for i in range(10)]
        assert len(reinsert_indices(rects, 3)) == 3


class TestRStarTree:
    def test_empty_tree(self):
        tree = RStarTree(dims=2, capacity=8)
        assert len(tree) == 0
        assert tree.bounds() is None
        assert tree.search(Rect((0, 0), (1, 1))) == []
        assert tree.nearest((0, 0), k=3) == []

    def test_insert_and_len(self):
        tree = RStarTree(dims=2, capacity=8)
        for i, p in enumerate(random_points(100, seed=1)):
            tree.insert(Rect.from_point(p), i)
        assert len(tree) == 100
        tree.check_invariants()

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(dims=2, capacity=3)

    def test_dims_mismatch_rejected(self):
        tree = RStarTree(dims=2, capacity=8)
        with pytest.raises(ValueError):
            tree.insert(Rect((0, 0, 0), (1, 1, 1)), "x")

    def test_window_search_exact(self):
        points = random_points(300, seed=2)
        tree = RStarTree(dims=2, capacity=16)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        window = Rect((20, 20), (60, 70))
        expected = {i for i, p in enumerate(points) if window.contains_point(p)}
        assert set(tree.search(window)) == expected
        assert set(tree.search_contained(window)) == expected

    def test_knn_matches_brute_force(self):
        points = random_points(500, seed=3)
        tree = RStarTree(dims=2, capacity=12)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        query = (33.0, 44.0)
        got = tree.nearest(query, k=10)
        brute = sorted(point_distance(p, query) for p in points)[:10]
        assert [d for d, _ in got] == pytest.approx(brute)

    def test_knn_distances_non_decreasing(self):
        points = random_points(200, seed=4)
        tree = RStarTree(dims=2, capacity=8)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        distances = [d for d, _ in tree.nearest((50, 50), k=50)]
        assert distances == sorted(distances)

    def test_knn_k_larger_than_size(self):
        tree = RStarTree(dims=2, capacity=8)
        for i, p in enumerate(random_points(5, seed=5)):
            tree.insert(Rect.from_point(p), i)
        assert len(tree.nearest((0, 0), k=50)) == 5

    def test_knn_invalid_k(self):
        tree = RStarTree(dims=2, capacity=8)
        with pytest.raises(ValueError):
            tree.nearest((0, 0), k=0)

    def test_delete_removes_item(self):
        points = random_points(120, seed=6)
        tree = RStarTree(dims=2, capacity=8)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        for i in range(0, 120, 2):
            assert tree.delete(Rect.from_point(points[i]), i)
        assert len(tree) == 60
        tree.check_invariants()
        remaining = {item for _, item in tree.items()}
        assert remaining == set(range(1, 120, 2))

    def test_delete_missing_returns_false(self):
        tree = RStarTree(dims=2, capacity=8)
        tree.insert(Rect.from_point((1, 1)), "a")
        assert not tree.delete(Rect.from_point((2, 2)), "a")
        assert not tree.delete(Rect.from_point((1, 1)), "b")

    def test_delete_to_empty_and_reuse(self):
        tree = RStarTree(dims=2, capacity=8)
        points = random_points(50, seed=7)
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(p), i)
        for i, p in enumerate(points):
            assert tree.delete(Rect.from_point(p), i)
        assert len(tree) == 0
        tree.insert(Rect.from_point((1, 2)), "again")
        assert len(tree) == 1
        tree.check_invariants()

    def test_node_access_counting(self):
        stats = AccessStats()
        tree = RStarTree(dims=2, capacity=8, stats=stats)
        for i, p in enumerate(random_points(200, seed=8)):
            tree.insert(Rect.from_point(p), i)
        stats.reset()
        tree.nearest((50, 50), k=1)
        assert stats.rtree_nodes >= tree.height
        assert stats.rtree_nodes < tree.node_count()

    def test_rectangles_with_extent(self):
        tree = RStarTree(dims=2, capacity=8)
        rng = random.Random(9)
        rects = []
        for i in range(150):
            x, y = rng.random() * 100, rng.random() * 100
            rect = Rect((x, y), (x + rng.random() * 5, y + rng.random() * 5))
            rects.append(rect)
            tree.insert(rect, i)
        tree.check_invariants()
        window = Rect((10, 10), (40, 40))
        expected = {i for i, r in enumerate(rects) if r.intersects(window)}
        assert set(tree.search(window)) == expected

    def test_duplicate_points_supported(self):
        tree = RStarTree(dims=2, capacity=8)
        for i in range(40):
            tree.insert(Rect.from_point((1.0, 1.0)), i)
        assert len(tree) == 40
        tree.check_invariants()
        assert set(tree.search(Rect((1, 1), (1, 1)))) == set(range(40))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_invariants_after_inserts(points):
    tree = RStarTree(dims=2, capacity=6)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(p), i)
    tree.check_invariants()
    assert len(tree) == len(points)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=2,
        max_size=80,
    ),
    st.randoms(use_true_random=False),
)
def test_property_invariants_after_mixed_deletes(points, rnd):
    tree = RStarTree(dims=2, capacity=6)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(p), i)
    order = list(range(len(points)))
    rnd.shuffle(order)
    for i in order[: len(order) // 2]:
        assert tree.delete(Rect.from_point(points[i]), i)
    tree.check_invariants()
    assert len(tree) == len(points) - len(order) // 2


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False),
            st.floats(0, 10, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    st.tuples(st.floats(0, 10, allow_nan=False), st.floats(0, 10, allow_nan=False)),
    st.integers(1, 10),
)
def test_property_knn_matches_brute_force(points, query, k):
    tree = RStarTree(dims=2, capacity=5)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(p), i)
    got = [d for d, _ in tree.nearest(query, k=k)]
    brute = sorted(point_distance(p, query) for p in points)[:k]
    assert got == pytest.approx(brute)
