"""The aRB-tree: range aggregates, and why it is not a kNNTA index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import POI, TimeInterval, datasets
from repro.related.arb_tree import ARBTree
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock
from repro.temporal.tia import IntervalSemantics


@pytest.fixture(scope="module")
def data():
    return datasets.make("LA", scale=0.03, seed=23)


@pytest.fixture(scope="module")
def tree(data):
    tree = ARBTree.build(data)
    tree.check_invariants()
    return tree


def brute_force(data, clock, rect, interval, semantics):
    total = 0
    counts = data.epoch_counts(clock)
    for poi_id in data.effective_poi_ids():
        x, y = data.positions[poi_id]
        if not rect.contains_point((x, y)):
            continue
        epochs = clock.epoch_range(interval, semantics)
        total += sum(
            counts[poi_id].get(e, 0) for e in epochs
        )
    return total


class TestRangeAggregate:
    @pytest.mark.parametrize(
        "window",
        [
            ((0, 0), (100, 100)),
            ((20, 20), (60, 70)),
            ((90, 90), (99, 99)),
            ((50, 50), (50, 50)),
        ],
    )
    @pytest.mark.parametrize("interval", [(0, 911), (100, 200), (800, 911)])
    def test_matches_brute_force(self, data, tree, window, interval):
        rect = Rect(*window)
        span = TimeInterval(*interval)
        expected = brute_force(
            data, tree.clock, rect, span, IntervalSemantics.INTERSECTS
        )
        assert tree.range_aggregate(rect, span) == expected

    def test_contained_semantics(self, data, tree):
        rect = Rect((10, 10), (80, 80))
        span = TimeInterval(3.0, 500.0)
        expected = brute_force(
            data, tree.clock, rect, span, IntervalSemantics.CONTAINED
        )
        got = tree.range_aggregate(rect, span, IntervalSemantics.CONTAINED)
        assert got == expected

    def test_full_cover_skips_descent(self, tree):
        """Covering the whole world answers from the root entries only."""
        snap = tree.stats.snapshot()
        tree.range_aggregate(tree.world, TimeInterval(0, 911))
        delta = tree.stats.diff(snap)
        assert delta.rtree_nodes == 1  # only the root is touched

    def test_empty_window(self, tree):
        assert tree.range_aggregate(
            Rect((200, 200), (300, 300)), TimeInterval(0, 911)
        ) == 0


class TestMaintenance:
    def test_insert_then_query(self, data):
        tree = ARBTree.build(data.snapshot(0.5))
        before = tree.range_aggregate(tree.world, TimeInterval(0, 911))
        tree.insert_poi(POI("fresh", 55.0, 44.0), {0: 7, 3: 2})
        tree.check_invariants()
        after = tree.range_aggregate(tree.world, TimeInterval(0, 911))
        assert after == before + 9

    def test_digest_epoch(self, data):
        tree = ARBTree.build(data.snapshot(0.5))
        poi_id = next(iter(tree._pois))
        before = tree.range_aggregate(tree.world, TimeInterval(0, 911))
        tree.digest_epoch(10, {poi_id: 4})
        tree.check_invariants()
        after = tree.range_aggregate(tree.world, TimeInterval(0, 911))
        assert after == before + 4

    def test_many_inserts_with_splits(self):
        rng = random.Random(3)
        tree = ARBTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            node_size=512,
            tia_backend="memory",
        )
        total = 0
        for i in range(300):
            history = {
                e: rng.randrange(1, 5) for e in range(6) if rng.random() < 0.5
            }
            total += sum(history.values())
            tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
        tree.check_invariants()
        assert tree.range_aggregate(tree.world, TimeInterval(0, 6)) == total


class TestSection2Arguments:
    """The related-work claims, made executable."""

    def test_varied_epochs_rejected(self):
        clock = VariedEpochClock.exponential(0.0, 1.0, count=4)
        with pytest.raises(TypeError):
            ARBTree(world=Rect((0, 0), (1, 1)), clock=clock)

    def test_returns_a_number_not_pois(self, tree):
        result = tree.range_aggregate(
            Rect((0, 0), (100, 100)), TimeInterval(0, 911)
        )
        assert isinstance(result, int)

    def test_internal_tias_are_sums_not_maxima(self):
        """Subtree sums over-estimate any single POI's aggregate by the
        subtree's population, so they cannot serve as the kNNTA ranking
        bound the TAR-tree's per-epoch maxima provide."""
        rng = random.Random(11)
        deep = ARBTree(
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            node_size=512,
            tia_backend="memory",
        )
        for i in range(200):
            deep.insert_poi(
                POI(i, rng.random() * 100, rng.random() * 100),
                {e: rng.randrange(1, 5) for e in range(4)},
            )
        assert not deep.root.is_leaf
        saw_strict = False
        for root_entry in deep.root.entries:
            child = root_entry.child
            for epoch, value in root_entry.tia.items():
                contributions = [e.tia.get(epoch) for e in child.entries]
                assert value == sum(contributions)
                if sum(1 for c in contributions if c) > 1:
                    assert value > max(contributions)
                    saw_strict = True
        assert saw_strict


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.dictionaries(st.integers(0, 5), st.integers(1, 5), max_size=3),
        ),
        min_size=1,
        max_size=60,
    ),
    st.tuples(
        st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
    ),
    st.tuples(
        st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
    ),
)
def test_property_range_aggregate_matches_filter(pois, corner_a, corner_b):
    tree = ARBTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        node_size=512,
        tia_backend="memory",
    )
    for i, (x, y, history) in enumerate(pois):
        tree.insert_poi(POI(i, x, y), history)
    lows = (min(corner_a[0], corner_b[0]), min(corner_a[1], corner_b[1]))
    highs = (max(corner_a[0], corner_b[0]), max(corner_a[1], corner_b[1]))
    rect = Rect(lows, highs)
    interval = TimeInterval(0, 6)
    expected = sum(
        sum(history.values())
        for x, y, history in pois
        if rect.contains_point((x, y))
    )
    assert tree.range_aggregate(rect, interval) == expected
