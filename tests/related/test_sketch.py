"""FM sketches and the sketch index (distinct counting, Section 2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TimeInterval
from repro.related.sketch import FMSketch, SketchIndex
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock, VariedEpochClock


class TestFMSketch:
    def test_empty(self):
        sketch = FMSketch()
        assert sketch.estimate() == 0.0
        assert sketch.is_empty

    def test_duplicates_do_not_inflate(self):
        sketch = FMSketch(num_bitmaps=64)
        for _ in range(1000):
            sketch.add("same-user")
        assert sketch.estimate() < 10

    @pytest.mark.parametrize("n", [100, 1000, 10000])
    def test_estimate_within_tolerance(self, n):
        sketch = FMSketch(num_bitmaps=64)
        for i in range(n):
            sketch.add("user-%d" % i)
        estimate = sketch.estimate()
        # Standard error ~ 0.78/sqrt(64) ~ 10%; allow 3 sigma.
        assert n * 0.65 <= estimate <= n * 1.5

    def test_union_estimates_set_union(self):
        a = FMSketch(num_bitmaps=64)
        b = FMSketch(num_bitmaps=64)
        for i in range(500):
            a.add("u%d" % i)
        for i in range(250, 750):
            b.add("u%d" % i)
        a.union(b)
        assert 750 * 0.65 <= a.estimate() <= 750 * 1.5

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError):
            FMSketch(num_bitmaps=8).union(FMSketch(num_bitmaps=16))

    def test_copy_is_independent(self):
        a = FMSketch(num_bitmaps=8)
        a.add("x")
        b = a.copy()
        b.add("y")
        assert a._bitmaps != b._bitmaps or a.estimate() <= b.estimate()

    def test_invalid_bitmaps(self):
        with pytest.raises(ValueError):
            FMSketch(num_bitmaps=0)

    def test_determinism(self):
        a = FMSketch(num_bitmaps=16)
        b = FMSketch(num_bitmaps=16)
        for i in range(100):
            a.add(i)
            b.add(i)
        assert a._bitmaps == b._bitmaps


def build_world(seed=0, n_pois=150, n_users=400, n_checkins=3000, epochs=10):
    rng = random.Random(seed)
    positions = {
        i: (rng.random() * 100, rng.random() * 100) for i in range(n_pois)
    }
    checkins = []
    for _ in range(n_checkins):
        checkins.append(
            (
                rng.randrange(n_pois),
                "user-%d" % rng.randrange(n_users),
                rng.random() * epochs,
            )
        )
    return positions, checkins


def brute_distinct(positions, checkins, clock, rect, interval):
    epochs = set(clock.epochs_intersecting(interval))
    visitors = set()
    for poi_id, visitor, t in checkins:
        if not rect.contains_point(positions[poi_id]):
            continue
        if clock.epoch_of(t) in epochs:
            visitors.add(visitor)
    return len(visitors)


class TestSketchIndex:
    @pytest.fixture(scope="class")
    def world(self):
        positions, checkins = build_world()
        clock = EpochClock(0.0, 1.0)
        index = SketchIndex.build(
            positions,
            checkins,
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=clock,
            num_bitmaps=64,
            node_size=512,
        )
        return positions, checkins, clock, index

    @pytest.mark.parametrize(
        "window,interval",
        [
            (((0, 0), (100, 100)), (0, 10)),
            (((20, 20), (70, 80)), (0, 10)),
            (((0, 0), (100, 100)), (2, 4)),
            (((40, 10), (90, 50)), (5, 9)),
        ],
    )
    def test_estimates_track_truth(self, world, window, interval):
        positions, checkins, clock, index = world
        rect = Rect(*window)
        span = TimeInterval(*interval)
        truth = brute_distinct(positions, checkins, clock, rect, span)
        estimate = index.distinct_count(rect, span)
        if truth == 0:
            assert estimate == 0.0
        else:
            assert truth * 0.6 <= estimate <= truth * 1.6

    def test_returnees_not_double_counted(self):
        """The distinct-counting problem: one user, many epochs."""
        positions = {0: (50.0, 50.0)}
        checkins = [(0, "regular", float(t) + 0.5) for t in range(10)]
        index = SketchIndex.build(
            positions,
            checkins,
            world=Rect((0.0, 0.0), (100.0, 100.0)),
            clock=EpochClock(0.0, 1.0),
            num_bitmaps=64,
        )
        estimate = index.distinct_count(
            Rect((0, 0), (100, 100)), TimeInterval(0, 10)
        )
        assert estimate < 5  # one visitor, not ten

    def test_empty_window(self, world):
        _, _, _, index = world
        assert index.distinct_count(
            Rect((200, 200), (300, 300)), TimeInterval(0, 10)
        ) == 0.0

    def test_full_cover_answers_from_root(self, world):
        _, _, _, index = world
        snap = index.stats.snapshot()
        index.distinct_count(index.world, TimeInterval(0, 10))
        assert index.stats.diff(snap).rtree_nodes == 1

    def test_varied_epochs_rejected(self):
        with pytest.raises(TypeError):
            SketchIndex(
                world=Rect((0, 0), (1, 1)),
                clock=VariedEpochClock([0.0, 1.0]),
            )


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(10, 300))
def test_property_estimate_scales(seed, n):
    rng = random.Random(seed)
    sketch = FMSketch(num_bitmaps=48)
    items = {rng.randrange(10 ** 9) for _ in range(n)}
    for item in items:
        sketch.add(item)
    estimate = sketch.estimate()
    assert len(items) * 0.35 <= estimate <= len(items) * 2.8
