"""Shared fixtures: a small synthetic LBSN, trees for every strategy."""

import pytest

from repro import TARTree, datasets
from repro.datasets.workload import generate_queries


@pytest.fixture(scope="session")
def small_dataset():
    """A small NYC-like data set (fast to index, ~200 effective POIs)."""
    return datasets.make("NYC", scale=0.02, seed=7)


@pytest.fixture(scope="session")
def medium_dataset():
    """A GS-like data set with a heavier tail (~300 effective POIs)."""
    return datasets.make("GS", scale=0.1, seed=11)


@pytest.fixture(scope="session")
def tar_tree(small_dataset):
    """Integral-3D TAR-tree over the small data set (paged TIAs)."""
    tree = TARTree.build(small_dataset, strategy="integral3d")
    tree.check_invariants()
    return tree


@pytest.fixture(scope="session")
def spatial_tree(small_dataset):
    tree = TARTree.build(small_dataset, strategy="spatial")
    tree.check_invariants()
    return tree


@pytest.fixture(scope="session")
def aggregate_tree(small_dataset):
    tree = TARTree.build(small_dataset, strategy="aggregate")
    tree.check_invariants()
    return tree


@pytest.fixture(scope="session")
def all_trees(tar_tree, spatial_tree, aggregate_tree):
    return {
        "integral3d": tar_tree,
        "spatial": spatial_tree,
        "aggregate": aggregate_tree,
    }


@pytest.fixture(scope="session")
def workload(small_dataset):
    return generate_queries(small_dataset, n_queries=25, k=10, alpha0=0.3, seed=3)
