"""Branch-and-bound skyline over the TAR-tree."""

import random

import pytest

from repro import POI, TARTree, TimeInterval
from repro.core.query import KNNTAQuery
from repro.core.scan import full_ranking
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import dominates, skyline_of_points
from repro.spatial.geometry import Rect
from repro.temporal.epochs import EpochClock


def build_tree(n=220, seed=0, strategy="integral3d", node_size=1024):
    rng = random.Random(seed)
    tree = TARTree(
        world=Rect((0.0, 0.0), (100.0, 100.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=12.0,
        strategy=strategy,
        node_size=node_size,
        tia_backend="memory",
    )
    for i in range(n):
        history = {
            e: rng.randrange(1, 9) for e in range(12) if rng.random() < 0.4
        }
        tree.insert_poi(POI(i, rng.random() * 100, rng.random() * 100), history)
    return tree


def reference_skyline(tree, query, exclude=frozenset()):
    ranking = full_ranking(tree, query)
    pairs = [
        (r.poi_id, r.score_pair) for r in ranking if r.poi_id not in exclude
    ]
    keep = skyline_of_points([pair for _, pair in pairs])
    keep_set = set(keep)
    return sorted(pid for pid, pair in pairs if pair in keep_set)


@pytest.mark.parametrize("strategy", ["integral3d", "spatial", "aggregate"])
def test_bbs_matches_bnl(strategy):
    tree = build_tree(seed=1, strategy=strategy)
    query = KNNTAQuery((30.0, 70.0), TimeInterval(0, 12), k=10, alpha0=0.3)
    got = sorted(pid for pid, _ in bbs_skyline(tree, query))
    assert got == reference_skyline(tree, query)


def test_bbs_with_exclusions():
    tree = build_tree(seed=2)
    query = KNNTAQuery((50.0, 50.0), TimeInterval(2, 9), k=10, alpha0=0.3)
    excluded = frozenset(range(0, 40))
    got = sorted(pid for pid, _ in bbs_skyline(tree, query, exclude=excluded))
    assert got == reference_skyline(tree, query, exclude=excluded)
    assert not (set(got) & excluded)


def test_bbs_pairs_are_pairwise_incomparable():
    tree = build_tree(seed=3)
    query = KNNTAQuery((10.0, 90.0), TimeInterval(0, 12), k=10)
    skyline = bbs_skyline(tree, query)
    pairs = [pair for _, pair in skyline]
    for i, a in enumerate(pairs):
        for b in pairs[i + 1 :]:
            assert not dominates(a, b)
            assert not dominates(b, a)


def test_bbs_accesses_fewer_nodes_than_full_traversal():
    # Small nodes make a deep tree, giving dominance pruning real targets.
    tree = build_tree(n=400, seed=4, node_size=256)
    query = KNNTAQuery((50.0, 50.0), TimeInterval(0, 12), k=10)
    snap = tree.stats.snapshot()
    bbs_skyline(tree, query)
    accessed = tree.stats.diff(snap).rtree_nodes
    assert accessed < tree.node_count()


def test_bbs_empty_tree():
    tree = TARTree(
        world=Rect((0.0, 0.0), (1.0, 1.0)),
        clock=EpochClock(0.0, 1.0),
        current_time=1.0,
        tia_backend="memory",
    )
    query = KNNTAQuery((0.5, 0.5), TimeInterval(0, 1), k=1)
    assert bbs_skyline(tree, query) == []


def test_bbs_sorted_by_l1_distance():
    tree = build_tree(seed=5)
    query = KNNTAQuery((25.0, 25.0), TimeInterval(0, 12), k=10)
    skyline = bbs_skyline(tree, query)
    sums = [pair[0] + pair[1] for _, pair in skyline]
    assert sums == sorted(sums)
