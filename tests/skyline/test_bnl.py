"""Block-nested-loop skyline and dominance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skyline.bnl import dominates, skyline_of_points


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((2, 2), (1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_reverse_flips(self):
        assert dominates((2, 2), (1, 1), reverse=True)
        assert not dominates((1, 1), (2, 2), reverse=True)
        assert not dominates((2, 2), (2, 2), reverse=True)


class TestSkyline:
    def test_simple(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (4, 4)]
        assert set(skyline_of_points(points)) == {(1, 5), (2, 2), (5, 1)}

    def test_empty(self):
        assert skyline_of_points([]) == []

    def test_single(self):
        assert skyline_of_points([(2, 3)]) == [(2, 3)]

    def test_all_on_a_chain(self):
        # Totally ordered points: only the minimum survives.
        points = [(i, i) for i in range(10)]
        assert skyline_of_points(points) == [(0, 0)]

    def test_anti_chain_keeps_everything(self):
        points = [(i, 10 - i) for i in range(10)]
        assert set(skyline_of_points(points)) == set(points)

    def test_duplicates_kept_once(self):
        points = [(1, 1), (1, 1), (0, 3), (0, 3)]
        result = skyline_of_points(points)
        assert sorted(result) == [(0, 3), (1, 1)]

    def test_reverse_skyline_is_maxima(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (0, 0)]
        assert set(skyline_of_points(points, reverse=True)) == {
            (1, 5),
            (5, 1),
            (3, 3),
        }


def brute_force_skyline(points, reverse=False):
    return [
        p
        for p in set(points)
        if not any(dominates(q, p, reverse) for q in points)
    ]


@given(
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=60),
    st.booleans(),
)
def test_property_matches_brute_force(points, reverse):
    got = skyline_of_points(points, reverse)
    assert sorted(got) == sorted(brute_force_skyline(points, reverse))


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=60))
def test_property_every_point_dominated_by_skyline_or_on_it(points):
    skyline = skyline_of_points(points)
    for p in points:
        assert p in skyline or any(dominates(s, p) for s in skyline)
