"""Documentation stays honest: the README quickstart actually runs."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_python_examples():
    assert README.exists()
    assert len(python_blocks()) >= 1


def test_readme_quickstart_executes():
    block = python_blocks()[0]
    # The snippet prints results; capture nothing, just require success.
    namespace = {}
    exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    results = namespace.get("results")
    assert results, "the quickstart should bind non-empty `results`"
    for result in results:
        assert 0.0 <= result.score <= 1.0


def test_design_and_experiments_exist():
    root = README.parent
    for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHMS.md"):
        path = root / name
        assert path.exists(), name
        assert path.stat().st_size > 1000, name


def test_design_lists_every_figure_bench():
    root = README.parent
    design = (root / "DESIGN.md").read_text()
    for bench in sorted((root / "benchmarks").glob("test_fig*.py")):
        assert bench.name in design, (
            "%s is not indexed in DESIGN.md's per-experiment table" % bench.name
        )


def test_experiments_cover_all_figures():
    experiments = (README.parent / "EXPERIMENTS.md").read_text()
    assert "Table 2" in experiments
    covered = set()
    for match in re.finditer(
        r"Fig(?:ure|\.)?s?\s+(\d+)(?:\s*[–-]\s*(\d+))?", experiments
    ):
        start = int(match.group(1))
        end = int(match.group(2)) if match.group(2) else start
        covered.update(range(start, end + 1))
    missing = set(range(6, 17)) - covered
    assert not missing, "EXPERIMENTS.md misses figures %s" % sorted(missing)
