"""The promised public surface of the ``repro`` package."""

import inspect
import math
import os

import pytest

import repro


# The full promised surface: a change here is an API change and needs a
# matching entry in repro.__init__ (and usually a docs update).
EXPECTED_EXPORTS = [
    "TARTree",
    "POI",
    "KNNTAQuery",
    "QueryResult",
    "Answer",
    "RankedAnswer",
    "TimeInterval",
    "EpochClock",
    "VariedEpochClock",
    "IntervalSemantics",
    "AggregateKind",
    "AccessStats",
    "CostModel",
    "CollectiveProcessor",
    "knnta_search",
    "knnta_browse",
    "sequential_scan",
    "minimum_weight_adjustment",
    "weight_adjustment_sequence",
    "FaultInjector",
    "TransientIOError",
    "RetryPolicy",
    "CheckpointedIngest",
    "MutationWAL",
    "WalRecord",
    "read_wal",
    "recover",
    "RecoveryReport",
    "RobustAnswer",
    "robust_knnta",
    "UnloggedMutationError",
    "QueryService",
    "SubscriptionRegistry",
    "WindowUpdate",
    "WindowState",
    "window_state",
    "TopKDelta",
    "DeltaKind",
    "ServiceConfig",
    "ServiceStats",
    "ServiceOverloadedError",
    "RequestTimeoutError",
    "validate_tree",
    "validate_against_dataset",
    "CorruptSnapshotError",
    "ClusterTree",
    "ClusterStateError",
    "ClusterDegradedError",
    "DegradedAnswer",
    "ResilienceConfig",
    "ShardPlan",
    "plan_shards",
    "save_cluster",
    "open_cluster",
    "recover_cluster",
    "__version__",
]


def test_all_matches_module_contents():
    assert sorted(repro.__all__) == sorted(EXPECTED_EXPORTS)
    for name in EXPECTED_EXPORTS:
        assert hasattr(repro, name), name


def test_query_entry_point_signatures():
    # Every query entry point takes one KNNTAQuery value; the kwargs
    # spread lives only on the deprecated shims.
    assert list(inspect.signature(repro.TARTree.query).parameters) == [
        "self",
        "query",
        "normalizer",
    ]
    robust = inspect.signature(repro.TARTree.robust_query)
    assert list(robust.parameters)[:2] == ["self", "query"]
    assert list(inspect.signature(repro.knnta_search).parameters)[:2] == [
        "tree",
        "query",
    ]
    assert list(inspect.signature(repro.robust_knnta).parameters)[:2] == [
        "tree",
        "query",
    ]
    assert list(inspect.signature(repro.sequential_scan).parameters)[:2] == [
        "tree",
        "query",
    ]


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_subpackages_importable():
    import repro.analysis
    import repro.cli
    import repro.datasets
    import repro.skyline
    import repro.spatial
    import repro.storage
    import repro.temporal

    assert callable(repro.cli.main)
    assert callable(repro.datasets.make)


class TestDevtoolsSurface:
    """The static-analysis toolchain is public API (docs/DEVTOOLS.md)."""

    EXPECTED = [
        "Finding",
        "FileContext",
        "ProgramContext",
        "ProgramRule",
        "Rule",
        "rule",
        "rule_ids",
        "registered_rules",
        "lint_file",
        "lint_paths",
        "render_text",
        "render_json",
        "META_UNUSED",
        "META_PARSE_ERROR",
        "HIERARCHY",
        "render_graph_json",
        "render_graph_dot",
        "LockOrderWatchdog",
        "LockOrderViolation",
    ]

    def test_exports(self):
        import repro.devtools

        assert sorted(repro.devtools.__all__) == sorted(self.EXPECTED)
        for name in self.EXPECTED:
            assert hasattr(repro.devtools, name), name

    def test_rule_registry_covers_documented_ids(self):
        import repro.devtools

        assert repro.devtools.rule_ids() == [
            "RT001",
            "RT002",
            "RT003",
            "RT004",
            "RT005",
            "RT006",
            "RT007",
            "RT008",
            "RT009",
            "RT010",
            repro.devtools.META_UNUSED,
            repro.devtools.META_PARSE_ERROR,
        ]

    def test_stdlib_only(self):
        # The lint engine must keep running on the dependency-free CI
        # legs: its own modules may import only the stdlib and each
        # other (checked statically — importing the package at runtime
        # always executes repro/__init__, which pulls in numpy).
        import ast

        import repro.devtools

        package_dir = os.path.dirname(
            os.path.abspath(repro.devtools.__file__)
        )
        for filename in sorted(os.listdir(package_dir)):
            if not filename.endswith(".py"):
                continue
            with open(os.path.join(package_dir, filename)) as handle:
                tree = ast.parse(handle.read())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    roots = [alias.name.split(".")[0] for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    roots = [(node.module or "").split(".")[0]]
                else:
                    continue
                for root in roots:
                    assert root not in {"numpy", "scipy"}, (
                        "%s imports %s" % (filename, root)
                    )
                    if root == "repro":
                        module = getattr(node, "module", None) or ""
                        assert module.startswith("repro.devtools"), (
                            "%s imports outside repro.devtools: %s"
                            % (filename, module)
                        )


class TestTypedDistribution:
    def test_py_typed_marker_ships_with_the_package(self):
        # PEP 561: the marker must live inside the package directory...
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        marker = os.path.join(package_dir, "py.typed")
        assert os.path.exists(marker)

    def test_py_typed_marker_is_declared_as_package_data(self):
        # ...and be declared in pyproject so wheels include it.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "pyproject.toml")) as handle:
            pyproject = handle.read()
        assert "[tool.setuptools.package-data]" in pyproject
        assert 'repro = ["py.typed"]' in pyproject


def test_every_public_callable_has_a_docstring():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        assert getattr(obj, "__doc__", None), "%s lacks a docstring" % name


class TestDeprecatedQueryShims:
    def make_query(self, tree):
        end = tree.current_time
        return repro.KNNTAQuery((0.4, 0.6), repro.TimeInterval(end - 28, end), k=5)

    def test_knnta_kwargs_shape_warns_and_answers_identically(self, tar_tree):
        query = self.make_query(tar_tree)
        expected = tar_tree.query(query)
        with pytest.warns(DeprecationWarning):
            legacy = tar_tree.knnta(
                query.point, query.interval, k=query.k, alpha0=query.alpha0
            )
        assert legacy == expected

    def test_knnta_warns_even_for_query_objects(self, tar_tree):
        # The facade is deprecated as a *name*, not just for its legacy
        # kwargs shape — a ready KNNTAQuery warns too (and still points
        # at TARTree.query as the replacement).
        query = self.make_query(tar_tree)
        with pytest.warns(DeprecationWarning, match="TARTree.query"):
            legacy = tar_tree.knnta(query)
        assert legacy == tar_tree.query(query)

    def test_robust_knnta_warns_even_for_query_objects(self, tar_tree):
        query = self.make_query(tar_tree)
        with pytest.warns(DeprecationWarning, match="robust_query"):
            legacy = tar_tree.robust_knnta(query)
        assert list(legacy) == list(tar_tree.robust_query(query))

    def test_robust_knnta_kwargs_shape_warns_and_answers_identically(
        self, tar_tree
    ):
        query = self.make_query(tar_tree)
        expected = tar_tree.robust_query(query)
        with pytest.warns(DeprecationWarning):
            legacy = tar_tree.robust_knnta(
                query.point, query.interval, k=query.k, alpha0=query.alpha0
            )
        assert list(legacy) == list(expected)
        assert legacy[0] == expected[0]

    def test_kwargs_shape_without_interval_rejected(self, tar_tree):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                tar_tree.knnta((0.4, 0.6))

    def test_knnta_warning_points_at_the_caller(self, tar_tree):
        # stacklevel must walk out of _coerce_query AND the shim, so the
        # warning names this test file — not tar_tree.py — as its origin.
        query = self.make_query(tar_tree)
        with pytest.warns(DeprecationWarning) as captured:
            tar_tree.knnta(query.point, query.interval, k=query.k)
        assert captured[0].filename == __file__

    def test_robust_knnta_warning_points_at_the_caller(self, tar_tree):
        query = self.make_query(tar_tree)
        with pytest.warns(DeprecationWarning) as captured:
            tar_tree.robust_knnta(query.point, query.interval, k=query.k)
        assert captured[0].filename == __file__


class TestInputHardening:
    def test_poi_rejects_nan_coordinates(self):
        with pytest.raises(ValueError):
            repro.POI("p", float("nan"), 1.0)

    def test_poi_rejects_infinite_coordinates(self):
        with pytest.raises(ValueError):
            repro.POI("p", 1.0, math.inf)

    def test_rect_rejects_nan_bounds(self):
        from repro.spatial.geometry import Rect

        with pytest.raises(ValueError):
            Rect((float("nan"), 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            Rect((0.0, 0.0), (1.0, float("nan")))
