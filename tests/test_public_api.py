"""The promised public surface of the ``repro`` package."""

import math

import pytest

import repro


EXPECTED_EXPORTS = [
    "TARTree",
    "POI",
    "KNNTAQuery",
    "QueryResult",
    "TimeInterval",
    "EpochClock",
    "VariedEpochClock",
    "IntervalSemantics",
    "AggregateKind",
    "AccessStats",
    "CostModel",
    "CollectiveProcessor",
    "knnta_search",
    "knnta_browse",
    "sequential_scan",
    "minimum_weight_adjustment",
    "weight_adjustment_sequence",
]


def test_all_matches_module_contents():
    for name in EXPECTED_EXPORTS:
        assert name in repro.__all__, name
        assert hasattr(repro, name), name


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_subpackages_importable():
    import repro.analysis
    import repro.cli
    import repro.datasets
    import repro.skyline
    import repro.spatial
    import repro.storage
    import repro.temporal

    assert callable(repro.cli.main)
    assert callable(repro.datasets.make)


def test_every_public_callable_has_a_docstring():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        assert getattr(obj, "__doc__", None), "%s lacks a docstring" % name


class TestInputHardening:
    def test_poi_rejects_nan_coordinates(self):
        with pytest.raises(ValueError):
            repro.POI("p", float("nan"), 1.0)

    def test_poi_rejects_infinite_coordinates(self):
        with pytest.raises(ValueError):
            repro.POI("p", 1.0, math.inf)

    def test_rect_rejects_nan_bounds(self):
        from repro.spatial.geometry import Rect

        with pytest.raises(ValueError):
            Rect((float("nan"), 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            Rect((0.0, 0.0), (1.0, float("nan")))
